// Out-of-core streaming TIV monitor: the streaming_monitor example's live
// pipeline rebuilt on ShardStreamEngine — continuous measurement ingestion
// with live severity maintenance where *neither the delay matrix nor the
// severity result is held in memory*.
//
// The engine spills the matrix to an on-disk tile store and the severities
// to an on-disk severity tile sink, then keeps both repaired under a
// deliberately tiny cache budget: each round re-measures a few edges, the
// epoch's dirty hosts map to dirty input tiles (repacked in place, cache
// invalidated), and only the incident severities are recomputed and
// committed through the sink — while a watch-list reads the worst current
// TIV edge back through the budgeted severity cache. Per-round cache +
// repair stats show the working set staying bounded.
//
// Survivability (docs/RELIABILITY.md): the monitor loop degrades
// gracefully instead of dying on storage faults. The engine self-heals
// checksum failures (rebuilding a corrupt severity tile from the input
// store, repacking a corrupt input tile from the live matrix), and each
// round logs what recovery absorbed; anything genuinely unrecoverable
// skips the round with a warning and the loop continues. Pass
// --inject-bitflips=K to flip one bit on every K-th tile read of both
// stores (the deterministic fault injector) and watch the healing happen.
//
// Telemetry (docs/OBSERVABILITY.md): every round ends with a one-line
// digest of per-phase wall clock, taken from the span tracer rather than
// ad-hoc timers, so the printed numbers are the same spans a --trace-out
// capture shows. --metrics-out=FILE appends one JSONL metrics snapshot
// (deltas since the previous line) per round; --trace-out=FILE dumps the
// whole run as Chrome trace_event JSON loadable in about://tracing.
//
// Profiling (docs/OBSERVABILITY.md): --profile-out=FILE runs the
// span-attributed sampling profiler for the whole run and writes its JSON
// profile; --profile-collapsed=FILE writes the collapsed-stack form for
// flamegraph tooling; --profile-hz=HZ picks the sampling rate (default 97).
//
// Scenarios (docs/OBSERVABILITY.md, "Quality observatory"):
// --scenario=NAME replaces the random probe loop with a seeded scenario
// trace (diurnal_drift, correlated_links, flash_crowd, partition_heal,
// oscillation) generated over this run's delay space — one trace epoch per
// round. --scenario=FILE replays a .tivtrace file instead (host count must
// match --hosts). --trace-record=FILE writes whatever the monitor ingested
// as a .tivtrace, so an interesting live run can be replayed later.
//
//   ./outcore_monitor [--hosts=200] [--rounds=6] [--seed=1]
//                     [--inject-bitflips=K]
//                     [--scenario=NAME|FILE] [--trace-record=FILE]
//                     [--metrics-out=FILE] [--trace-out=FILE]
//                     [--profile-out=FILE] [--profile-collapsed=FILE]
//                     [--profile-hz=HZ]
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <optional>
#include <vector>

#include "delayspace/datasets.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scenario/generators.hpp"
#include "scenario/trace.hpp"
#include "shard/fault_injector.hpp"
#include "stream/delay_stream.hpp"
#include "stream/shard_stream.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

/// Retained-span totals for the digest line; sampled per round so each
/// line shows that round's delta.
struct PhaseTotals {
  std::uint64_t ingest = 0;
  std::uint64_t epoch = 0;
  std::uint64_t repack = 0;
  std::uint64_t band = 0;
  std::uint64_t commit = 0;
};

PhaseTotals sample_phases(const tiv::obs::SpanTracer& tracer) {
  PhaseTotals t;
  t.ingest = tracer.total_ns("ingest");
  t.epoch = tracer.total_ns("epoch");
  t.repack = tracer.total_ns("tile-repack");
  t.band = tracer.total_ns("band-pair-stream");
  t.commit = tracer.total_ns("sink-commit");
  return t;
}

double ms(std::uint64_t later_ns, std::uint64_t earlier_ns) {
  return later_ns >= earlier_ns
             ? static_cast<double>(later_ns - earlier_ns) / 1e6
             : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  using delayspace::HostId;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 200));
  auto rounds = static_cast<int>(flags.get_int("rounds", 6));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto inject_k =
      static_cast<std::uint32_t>(flags.get_int("inject-bitflips", 0));
  const std::string scenario_arg = flags.get_string("scenario", "");
  const std::string record_path = flags.get_string("trace-record", "");
  const std::string metrics_path = flags.get_string("metrics-out", "");
  const std::string trace_path = flags.get_string("trace-out", "");
  const std::string profile_path = flags.get_string("profile-out", "");
  const std::string collapsed_path = flags.get_string("profile-collapsed", "");
  const double profile_hz = flags.get_double("profile-hz", 97.0);
  reject_unknown_flags(flags);

  // The tracer powers both the per-round digest and --trace-out, so it is
  // always attached; 2^16 slots hold every span of a typical run.
  obs::SpanTracer tracer(1 << 16);
  obs::SpanTracer::attach(&tracer);

  obs::SpanProfiler profiler({profile_hz});
  if (!profile_path.empty() || !collapsed_path.empty()) profiler.start();

  std::ofstream metrics_file;
  std::optional<obs::SnapshotReporter> reporter;
  if (!metrics_path.empty()) {
    metrics_file.open(metrics_path);
    if (!metrics_file) {
      std::cerr << "cannot open --metrics-out file: " << metrics_path << "\n";
      return 1;
    }
    reporter.emplace(metrics_file);
  }

  // The "network": a DS^2-like delay space whose matrix seeds the stream.
  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const auto space = delayspace::generate_delay_space(params);

  stream::EstimatorParams est;
  est.policy = stream::SmoothingPolicy::kEwma;
  est.ewma_alpha = 0.3f;
  stream::DelayStream live(space.measured, est);
  const HostId n = live.matrix().size();

  // Scenario mode: the probe loop below is replaced by a seeded trace's
  // sample stream, one epoch per round (docs/OBSERVABILITY.md).
  std::optional<scenario::DelayTrace> scenario_trace;
  if (!scenario_arg.empty()) {
    if (scenario::is_scenario_family(scenario_arg)) {
      scenario::ScenarioParams sp;
      sp.epochs = static_cast<std::uint32_t>(std::max(rounds, 1));
      sp.seed = seed;
      scenario_trace =
          scenario::generate_scenario(scenario_arg, space.measured, sp);
    } else {
      try {
        scenario_trace = scenario::DelayTrace::load(scenario_arg);
      } catch (const std::exception& e) {
        std::cerr << "cannot load --scenario trace: " << e.what() << "\n";
        return 1;
      }
      if (scenario_trace->hosts != n) {
        std::cerr << "--scenario trace has " << scenario_trace->hosts
                  << " hosts but this run has " << n
                  << "; rerun with --hosts=" << scenario_trace->hosts << "\n";
        return 1;
      }
    }
    rounds = static_cast<int>(scenario_trace->epochs.size());
    std::cout << "Scenario '" << scenario_trace->family << "' (seed "
              << scenario_trace->seed << "): " << rounds << " epoch(s), "
              << scenario_trace->total_samples() << " measurement(s)\n";
  }

  // --trace-record: everything the monitor ingests, written as a replayable
  // trace. In random-probe mode the ground truth never changes, so each
  // recorded epoch carries samples only.
  std::optional<scenario::DelayTrace> recorded;
  if (!record_path.empty()) {
    if (scenario_trace) {
      recorded = *scenario_trace;  // keep the truth stream replayable too
    } else {
      recorded.emplace();
      recorded->hosts = n;
      recorded->seed = seed;
      recorded->family = "recorded";
    }
  }

  // Deliberately tiny budgets: a dozen input tiles and half a dozen
  // severity tiles — far below the full tile grids — so every round
  // genuinely streams from disk. Floored at the pinned working set
  // (3 input tiles per band-pair worker + one prefetch; one output tile
  // per worker) so the within-budget claim below holds on many-core hosts
  // too, where pinned tiles alone would exceed a fixed 12-tile budget.
  stream::ShardStreamConfig cfg;
  cfg.tile_dim = 32;
  const std::size_t in_tile =
      std::size_t{32} * 32 * sizeof(float) + std::size_t{32} * sizeof(std::uint64_t);
  const std::size_t out_tile = std::size_t{32} * 32 * sizeof(float);
  cfg.input_budget_bytes =
      std::max(std::size_t{12}, 3 * parallel_thread_count() + 2) * in_tile;
  cfg.output_budget_bytes =
      std::max(std::size_t{6}, parallel_thread_count() + 1) * out_tile;
  stream::ShardStreamEngine monitor(live.matrix(), cfg);

  // The live matrix is the repair source for corrupt *input* tiles; sink
  // tiles rebuild from the input store. With both in place every checksum
  // failure is recoverable and the loop below never has to die for one.
  monitor.attach_source(&live.matrix());

  std::optional<shard::FaultInjector> in_inj;
  std::optional<shard::FaultInjector> out_inj;
  if (inject_k > 0) {
    shard::FaultInjector::Config fault;
    fault.bitflip_every_kth_read = inject_k;
    fault.seed = seed ^ 0xb17ULL;
    in_inj.emplace(fault);
    fault.seed = seed ^ 0xf11ULL;
    out_inj.emplace(fault);
    monitor.set_input_fault_injector(&*in_inj);
    monitor.set_sink_fault_injector(&*out_inj);
    std::cout << "Fault injection ON: one bit flipped on every " << inject_k
              << "th tile read of each store\n";
  }

  std::cout << "Monitoring " << n << " hosts out of core ("
            << live.matrix().measured_pair_count() << " measured pairs)\n"
            << "  input store:  " << monitor.input_path() << " (cache budget "
            << cfg.input_budget_bytes / 1024 << " KiB)\n"
            << "  severity sink: " << monitor.sink_path() << " (cache budget "
            << cfg.output_budget_bytes / 1024 << " KiB)\n\n";

  Rng rng(seed ^ 0xfeedULL);
  Table table({"round", "samples", "dirty hosts", "tiles repacked",
               "sev tiles", "edges repaired", "in hit%", "in peak KiB",
               "out peak KiB", "worst edge", "severity"});
  std::vector<float> row(n);
  auto last_rec = monitor.recovery_stats();
  auto last_phases = sample_phases(tracer);
  auto last_snap = obs::MetricsRegistry::instance().snapshot();
  for (int round = 1; round <= rounds; ++round) {
    // One round of measurements: the scenario trace's epoch when replaying,
    // otherwise ~2% of hosts' edges re-measured with noise around the true
    // delay and a 5% outage / recovery mix (measured<->missing churn).
    std::vector<stream::DelaySample> batch;
    if (scenario_trace) {
      batch = scenario_trace->epochs[static_cast<std::size_t>(round - 1)]
                  .samples;
    } else {
      const auto probes = std::max<std::uint64_t>(2, n / 50);
      for (std::uint64_t p = 0; p < probes; ++p) {
        const auto a = static_cast<HostId>(rng.uniform_index(n));
        const auto b = static_cast<HostId>(rng.uniform_index(n));
        if (a == b) continue;
        const float truth = space.measured.at(a, b);
        float sample;
        if (rng.bernoulli(0.05)) {
          sample = delayspace::DelayMatrix::kMissing;  // probe timed out
        } else if (truth >= 0.0f) {
          sample = truth * static_cast<float>(rng.uniform(0.85, 1.25));
        } else {
          sample = static_cast<float>(rng.uniform(20.0, 300.0));  // new path
        }
        batch.push_back({a, b, sample, static_cast<double>(round)});
      }
      if (recorded) {
        scenario::TraceEpoch& ep = recorded->epochs.emplace_back();
        ep.samples = batch;
      }
    }
    live.ingest(batch);

    const stream::Epoch epoch = live.commit_epoch();
    // Graceful degradation: the engine heals every checksum failure it can
    // (and logs what it did below); a genuinely unrecoverable fault skips
    // the round with a warning instead of killing the monitor.
    try {
      const auto stats = monitor.apply_epoch(live.matrix(), epoch.dirty_hosts);

      // Watch-list: the worst currently-known severity, read back through
      // the budgeted sink cache (never materializing the N^2 result).
      float worst = -1.0f;
      HostId wa = 0;
      HostId wb = 0;
      for (HostId i = 0; i < n; ++i) {
        monitor.severity_row(i, row);
        for (HostId j = i + 1; j < n; ++j) {
          if (row[j] > worst) {
            worst = row[j];
            wa = i;
            wb = j;
          }
        }
      }
      const auto in_stats = monitor.input_cache_stats();
      const auto out_stats = monitor.output_cache_stats();
      table.add_row({std::to_string(round), std::to_string(batch.size()),
                     std::to_string(epoch.dirty_hosts.size()),
                     std::to_string(stats.input_tiles_repacked),
                     std::to_string(stats.severity_tiles_committed),
                     std::to_string(stats.edges_recomputed),
                     format_double(100.0 * in_stats.hit_rate(), 1),
                     std::to_string(in_stats.peak_bytes / 1024),
                     std::to_string(out_stats.peak_bytes / 1024),
                     std::to_string(wa) + "-" + std::to_string(wb),
                     format_double(worst, 3)});
    } catch (const std::exception& e) {
      std::cout << "[round " << round << "] unrecoverable storage fault: "
                << e.what() << " — severities stale this round, continuing\n";
    }

    // Recovery log: what the storage layer absorbed or healed this round.
    const auto rec = monitor.recovery_stats();
    const auto transient = (rec.input_read_retries + rec.sink_read_retries) -
                           (last_rec.input_read_retries +
                            last_rec.sink_read_retries);
    const auto healed_in =
        rec.input_tiles_recovered - last_rec.input_tiles_recovered;
    const auto healed_out =
        rec.sink_tiles_recovered - last_rec.sink_tiles_recovered;
    const auto retried = rec.io_retries - last_rec.io_retries;
    if (transient + healed_in + healed_out + retried > 0) {
      std::cout << "[round " << round << "] recovery: " << transient
                << " transient flip(s) absorbed by re-read, " << healed_out
                << " sink tile(s) rebuilt, " << healed_in
                << " input tile(s) repacked, " << retried
                << " I/O retr" << (retried == 1 ? "y" : "ies") << "\n";
    }
    last_rec = rec;

    // Telemetry digest: phase wall clock from the tracer's spans (the same
    // numbers a --trace-out capture renders) plus the round's I/O and
    // cache-hit deltas from the registry.
    const auto phases = sample_phases(tracer);
    const auto snap = obs::MetricsRegistry::instance().snapshot();
    const auto delta = snap.delta_since(last_snap);
    const auto counter = [&delta](const char* name) -> std::uint64_t {
      const auto it = delta.counters.find(name);
      return it == delta.counters.end() ? 0 : it->second;
    };
    const std::uint64_t hits =
        counter("cache.input.hits") + counter("cache.sink.hits");
    const std::uint64_t misses =
        counter("cache.input.misses") + counter("cache.sink.misses");
    const double hit_pct =
        hits + misses == 0
            ? 100.0
            : 100.0 * static_cast<double>(hits) /
                  static_cast<double>(hits + misses);
    std::cout << "[round " << round << "] phases: ingest "
              << format_double(ms(phases.ingest, last_phases.ingest), 2)
              << " ms, epoch "
              << format_double(ms(phases.epoch, last_phases.epoch), 2)
              << " ms (repack "
              << format_double(ms(phases.repack, last_phases.repack), 2)
              << ", band-stream "
              << format_double(ms(phases.band, last_phases.band), 2)
              << ", commit "
              << format_double(ms(phases.commit, last_phases.commit), 2)
              << ") | io: read "
              << (counter("shard.input.read_bytes") +
                  counter("shard.sink.read_bytes")) / 1024
              << " KiB, wrote "
              << (counter("shard.input.write_bytes") +
                  counter("shard.sink.write_bytes")) / 1024
              << " KiB | cache hit " << format_double(hit_pct, 1)
              << "% | rejected " << counter("stream.samples_rejected") << " ("
              << counter("stream.rejected_self_pair") << " self-pair, "
              << counter("stream.rejected_stale") << " stale, "
              << counter("stream.rejected_nonfinite") << " non-finite)\n";
    last_phases = phases;
    last_snap = snap;
    if (reporter) reporter->report_now("round-" + std::to_string(round));
  }
  table.print(std::cout);
  std::cout << "\nEach round repaired only the dirty input tiles and the "
               "severity tiles holding\nedges incident to re-measured hosts; "
               "peak tracked memory stayed within the\n"
            << (cfg.input_budget_bytes + cfg.output_budget_bytes) / 1024
            << " KiB combined budget against "
            << static_cast<std::size_t>(n) * n * 2 * sizeof(float) / 1024
            << " KiB of matrix + severity state.\n"
            << "(spill files are removed when the engine is destroyed)\n";

  obs::SpanTracer::attach(nullptr);
  if (profiler.running()) {
    profiler.stop();
    const obs::Profile prof = profiler.profile();
    if (!profile_path.empty()) {
      std::ofstream pf(profile_path);
      if (!pf) {
        std::cerr << "cannot open --profile-out file: " << profile_path
                  << "\n";
        return 1;
      }
      prof.write_json(pf);
      std::cout << "profile: " << prof.samples << " sample(s) over "
                << prof.ticks << " tick(s) written to " << profile_path
                << "\n";
    }
    if (!collapsed_path.empty()) {
      std::ofstream cf(collapsed_path);
      if (!cf) {
        std::cerr << "cannot open --profile-collapsed file: "
                  << collapsed_path << "\n";
        return 1;
      }
      prof.write_collapsed(cf);
      std::cout << "collapsed profile written to " << collapsed_path
                << " (feed to flamegraph.pl / speedscope)\n";
    }
  }
  if (!trace_path.empty()) {
    std::ofstream trace_file(trace_path);
    if (!trace_file) {
      std::cerr << "cannot open --trace-out file: " << trace_path << "\n";
      return 1;
    }
    tracer.write_chrome_trace(trace_file);
    std::cout << "trace: " << tracer.events().size() << " span(s) written to "
              << trace_path << " (load in about://tracing or perfetto.dev)\n";
  }
  if (!metrics_path.empty()) {
    std::cout << "metrics: " << rounds << " JSONL snapshot(s) written to "
              << metrics_path << "\n";
  }
  if (recorded) {
    try {
      recorded->save(record_path);
    } catch (const std::exception& e) {
      std::cerr << "cannot write --trace-record file: " << e.what() << "\n";
      return 1;
    }
    std::cout << "trace-record: " << recorded->epochs.size()
              << " epoch(s) written to " << record_path
              << " (replay with --scenario=" << record_path << ")\n";
  }
  return 0;
}
