// detour_routing: the constructive use of TIV awareness — a violated edge
// guarantees a faster relay path exists, and the TIV alert tells a node
// which edges are worth spending detour probes on, with no global
// knowledge.
//
//   ./detour_routing [--hosts=500] [--relays=8] [--threshold=0.6] [--seed=1]
#include <iostream>

#include "core/detour.hpp"
#include "delayspace/datasets.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 500));
  const auto relays = static_cast<std::uint32_t>(flags.get_int("relays", 8));
  const double threshold = flags.get_double("threshold", 0.6);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  reject_unknown_flags(flags);

  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const auto space = delayspace::generate_delay_space(params);

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(300);

  core::DetourParams dp;
  dp.alert_threshold = threshold;
  dp.relay_candidates = relays;
  const core::DetourEvaluation eval =
      core::evaluate_detour_routing(vivaldi, dp, 20000, 31 ^ seed);

  std::cout << "hosts: " << space.measured.size() << ", evaluated edges: "
            << eval.edges << ", alerted: " << eval.alerted_edges
            << ", detoured: " << eval.detoured_edges << "\n";

  print_section(std::cout, "End-to-end delay (ms) by routing scheme");
  Table table({"scheme", "mean", "median", "p90", "probes"});
  table.add_row({"direct", format_double(eval.direct_ms.mean, 1),
                 format_double(eval.direct_ms.median, 1),
                 format_double(eval.direct_ms.p90, 1), "0"});
  table.add_row({"tiv-aware detour", format_double(eval.achieved_ms.mean, 1),
                 format_double(eval.achieved_ms.median, 1),
                 format_double(eval.achieved_ms.p90, 1),
                 std::to_string(eval.probes_tiv_aware)});
  table.add_row({"random-relay detour",
                 format_double(eval.random_relay_ms.mean, 1),
                 format_double(eval.random_relay_ms.median, 1),
                 format_double(eval.random_relay_ms.p90, 1),
                 std::to_string(eval.probes_random)});
  table.add_row({"one-hop oracle", format_double(eval.oracle_ms.mean, 1),
                 format_double(eval.oracle_ms.median, 1),
                 format_double(eval.oracle_ms.p90, 1), "-"});
  table.print(std::cout);

  std::cout << "\nmean stretch over the one-hop oracle: direct="
            << format_double(eval.mean_stretch_direct, 3)
            << ", tiv-aware=" << format_double(eval.mean_stretch_achieved, 3)
            << "\n";
  std::cout << "probe cost: tiv-aware spends "
            << format_double(100.0 * static_cast<double>(eval.probes_tiv_aware) /
                                 static_cast<double>(
                                     std::max<std::uint64_t>(
                                         1, eval.probes_random)),
                             1)
            << "% of the random-relay budget\n";
  return 0;
}
