// Streaming TIV monitor: continuous measurement ingestion with live
// severity maintenance — the src/stream/ subsystem end to end.
//
// A synthetic delay space plays the role of the live network. Each round, a
// small fraction of its edges is "re-measured" with multiplicative noise
// (plus occasional outages and recoveries), the samples are ingested
// through an EWMA DelayStream, and IncrementalSeverity repairs exactly the
// perturbed severities — O(dirty * n^2) instead of the O(n^3) rebuild a
// snapshot analyzer would need — while a watch-list reports the currently
// worst TIV edges.
//
//   ./streaming_monitor [--hosts=300] [--rounds=8] [--seed=1]
#include <algorithm>
#include <iostream>
#include <vector>

#include "delayspace/datasets.hpp"
#include "stream/delay_stream.hpp"
#include "stream/incremental_severity.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using delayspace::HostId;
  const Flags flags(argc, argv);
  const auto hosts = static_cast<std::uint32_t>(flags.get_int("hosts", 300));
  const auto rounds = static_cast<int>(flags.get_int("rounds", 8));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  reject_unknown_flags(flags);

  // The "network": a DS^2-like delay space whose matrix seeds the stream.
  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2, hosts);
  params.topology.seed ^= seed;
  params.hosts.seed ^= seed;
  const auto space = delayspace::generate_delay_space(params);

  stream::EstimatorParams est;
  est.policy = stream::SmoothingPolicy::kEwma;
  est.ewma_alpha = 0.3f;
  stream::DelayStream live(space.measured, est);
  stream::IncrementalSeverity monitor(live.matrix());
  const HostId n = live.matrix().size();
  std::cout << "Monitoring " << n << " hosts ("
            << live.matrix().measured_pair_count()
            << " measured pairs); initial full severity build done\n\n";

  Rng rng(seed ^ 0xfeedULL);
  Table table({"round", "samples", "dirty hosts", "edges repaired",
               "worst edge", "severity"});
  for (int round = 1; round <= rounds; ++round) {
    // Re-measure ~2% of hosts' edges this round: noise around the true
    // delay, with a 5% outage / recovery mix (measured<->missing churn).
    std::vector<stream::DelaySample> batch;
    const auto probes = std::max<std::uint64_t>(2, n / 50);
    for (std::uint64_t p = 0; p < probes; ++p) {
      const auto a = static_cast<HostId>(rng.uniform_index(n));
      const auto b = static_cast<HostId>(rng.uniform_index(n));
      if (a == b) continue;
      const float truth = space.measured.at(a, b);
      float sample;
      if (rng.bernoulli(0.05)) {
        sample = delayspace::DelayMatrix::kMissing;  // probe timed out
      } else if (truth >= 0.0f) {
        sample = truth * static_cast<float>(rng.uniform(0.85, 1.25));
      } else {
        sample = static_cast<float>(rng.uniform(20.0, 300.0));  // new path
      }
      batch.push_back({a, b, sample, static_cast<double>(round)});
    }
    live.ingest(batch);

    const stream::Epoch epoch = live.commit_epoch();
    const auto stats = monitor.apply_epoch(live.matrix(), epoch.dirty_hosts);

    // Watch-list: the worst currently-known severity among measured edges.
    float worst = -1.0f;
    HostId wa = 0;
    HostId wb = 0;
    for (HostId i = 0; i < n; ++i) {
      for (HostId j = i + 1; j < n; ++j) {
        if (monitor.severities().at(i, j) > worst) {
          worst = monitor.severities().at(i, j);
          wa = i;
          wb = j;
        }
      }
    }
    table.add_row({std::to_string(round), std::to_string(batch.size()),
                   std::to_string(epoch.dirty_hosts.size()),
                   std::to_string(stats.edges_recomputed),
                   std::to_string(wa) + "-" + std::to_string(wb),
                   format_double(worst, 3)});
  }
  table.print(std::cout);
  std::cout << "\nEach round repaired only the edges incident to re-measured "
               "hosts;\na snapshot analyzer would have rebuilt all "
            << static_cast<std::size_t>(n) * (n - 1) / 2 << " severities.\n";
  return 0;
}
