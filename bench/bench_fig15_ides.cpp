// Figure 15: neighbor-selection penalty CDF of IDES (matrix-factorization
// coordinates) vs original Vivaldi, DS^2. Paper shape: IDES — despite being
// able to represent TIVs — is WORSE than Vivaldi at neighbor selection.
//
// --json emits flat records (sections: config, cdf, quantiles) for
// machine-checkable regressions.
#include <iostream>

#include "bench_common.hpp"
#include "embedding/vivaldi.hpp"
#include "matfact/ides.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 800);
  const auto candidates = static_cast<std::uint32_t>(
      flags.get_int("candidates", 0));
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 5));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(100);

  matfact::IdesParams ip;
  ip.seed = 23 ^ cfg.seed;
  const matfact::Ides ides(space.measured, ip);

  neighbor::SelectionParams sp;
  sp.num_candidates =
      candidates != 0 ? candidates : std::max<std::uint32_t>(20, n / 20);
  sp.runs = runs;
  sp.seed = 77 ^ cfg.seed;
  const neighbor::SelectionExperiment exp(space.measured, sp);
  if (!cfg.json) {
    std::cout << "hosts: " << n << ", candidates: " << sp.num_candidates
              << ", runs: " << runs << "\n";
  }

  const Cdf cdf_ides = exp.run([&ides](delayspace::HostId a,
                                       delayspace::HostId b) {
    return ides.predicted(a, b);
  });
  const Cdf cdf_vivaldi = exp.run(
      [&vivaldi](delayspace::HostId a, delayspace::HostId b) {
        return vivaldi.predicted(a, b);
      });

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig15_ides");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", n)
        .field("candidates", sp.num_candidates)
        .field("runs", runs);
    const std::vector<std::string> names{"IDES", "Vivaldi-original"};
    const std::vector<Cdf> cdfs{cdf_ides, cdf_vivaldi};
    emit_cdf_grid_json(json, "cdf", names, cdfs, log_grid(1.0, 10000.0), 0);
    emit_cdf_quantiles_json(json, "quantiles", names, cdfs);
    return 0;
  }

  print_cdfs_on_grid("Figure 15: neighbor selection, IDES vs Vivaldi",
                     {"IDES", "Vivaldi-original"}, {cdf_ides, cdf_vivaldi},
                     log_grid(1.0, 10000.0), cfg, 0);
  print_cdfs_by_quantile("Figure 15 (quantile view)",
                         {"IDES", "Vivaldi-original"},
                         {cdf_ides, cdf_vivaldi}, cfg);
  return 0;
}
