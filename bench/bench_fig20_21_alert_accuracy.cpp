// Figures 20-21: accuracy and recall of the TIV alert mechanism vs alert
// threshold, for the worst {1, 5, 10, 20}% most severe edges, DS^2. Paper
// shape: tight thresholds give very high accuracy but low recall; relaxing
// the threshold trades accuracy for recall. At threshold 0.6 the paper
// alerts ~4% of edges with 70% recall of the worst 1%.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/alert.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 700);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 30000));
  const auto warmup = static_cast<std::uint32_t>(flags.get_int("warmup", 300));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig20_21_alert_accuracy");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  (cfg.json ? std::cerr : std::cout)
      << "embedding " << space.measured.size() << " hosts for " << warmup
      << " s...\n";
  vivaldi.run(warmup);
  const auto ratio_samples =
      core::collect_ratio_severity_samples(vivaldi, samples, 321 ^ cfg.seed);

  const std::vector<double> worst_fractions{0.01, 0.05, 0.10, 0.20};
  const std::vector<double> thresholds{0.1, 0.2, 0.3, 0.4, 0.5,
                                       0.6, 0.7, 0.8, 0.9, 1.0};
  if (cfg.json) {
    // One record per (threshold, worst-fraction) cell: both figures' series
    // (accuracy = Fig. 20, recall = Fig. 21) plus the alerted-edge fraction
    // and F1, all computed by the shared scenario/score.* classification
    // core (evaluate_alert delegates to scenario::score_ratio_alert).
    for (double t : thresholds) {
      for (double w : worst_fractions) {
        const auto m = core::evaluate_alert(ratio_samples, w, t);
        json->object()
            .field("section", std::string("alert_accuracy"))
            .field("threshold", t, 1)
            .field("worst_fraction", w, 2)
            .field("accuracy", m.accuracy, 4)
            .field("recall", m.recall, 4)
            .field("f1", m.f1, 4)
            .field("alert_fraction", m.alert_fraction, 4);
      }
    }
    return 0;
  }
  for (const bool recall_view : {false, true}) {
    print_section(std::cout,
                  recall_view
                      ? "Figure 21: recall of TIV alert vs threshold"
                      : "Figure 20: accuracy of TIV alert vs threshold");
    Table table({"threshold", "worst 1%", "worst 5%", "worst 10%",
                 "worst 20%", "alert frac"});
    for (double t : thresholds) {
      std::vector<std::string> row{format_double(t, 1)};
      double alert_frac = 0.0;
      for (double w : worst_fractions) {
        const auto m = core::evaluate_alert(ratio_samples, w, t);
        row.push_back(format_double(recall_view ? m.recall : m.accuracy, 3));
        alert_frac = m.alert_fraction;
      }
      row.push_back(format_double(alert_frac, 3));
      table.add_row(std::move(row));
    }
    emit(table, cfg);
  }
  std::cout << "(paper reference points: threshold 0.1 -> accuracy 0.92 on "
               "worst 1%; threshold 0.6 -> ~4% of edges alerted, 70% recall "
               "of worst 1%)\n";
  return 0;
}
