// Figure 11: distribution of per-edge oscillation ranges
// (max - min predicted delay over a 500 s window) vs edge delay, DS^2.
// Paper shape: predictions oscillate over large ranges — tens to hundreds
// of ms — even for very short edges. Also prints the in-text DS^2 numbers
// (median abs error ~20 ms, 90th ~140 ms; movement 1.61 / 6.18 ms per
// step).
//
// --json emits flat records (sections: bin, intext) for machine-checkable
// regressions.
#include <iostream>

#include "bench_common.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 800);
  const auto warmup = static_cast<std::uint32_t>(flags.get_int("warmup", 100));
  const auto window = static_cast<std::uint32_t>(flags.get_int("window", 500));
  const auto tracked =
      static_cast<std::size_t>(flags.get_int("tracked-edges", 100000));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  embedding::VivaldiParams vp;
  vp.seed = 5 ^ cfg.seed;
  embedding::VivaldiSystem sys(space.measured, vp);
  if (!cfg.json) std::cout << "warming up Vivaldi for " << warmup << " s...\n";
  sys.run(warmup);

  embedding::OscillationTracker tracker(space.measured, tracked);
  embedding::MovementRecorder movement;
  for (std::uint32_t t = 0; t < window; ++t) {
    movement.record(sys.tick());
    tracker.observe(sys);
  }

  BinnedSeries series(0.0, 1000.0, 10.0);
  for (const auto& r : tracker.ranges(space.measured)) {
    series.add(r.measured_ms, r.range_ms);
  }
  const Summary err = sys.snapshot_error(200000).absolute_error();
  const Summary speed = movement.speed_summary();

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig11_oscillation");
    json.meta(cfg);
    for (const Bin& b : series.bins()) {
      json.object()
          .field("section", std::string("bin"))
          .field("delay_ms", b.x_center, 1)
          .field("p10", b.p10, 3)
          .field("median", b.median, 3)
          .field("p90", b.p90, 3)
          .field("mean", b.mean, 3)
          .field("count", b.count);
    }
    json.object()
        .field("section", std::string("intext"))
        .field("median_abs_error_ms", err.median, 2)
        .field("p90_abs_error_ms", err.p90, 2)
        .field("median_movement_ms", speed.median, 3)
        .field("p90_movement_ms", speed.p90, 3);
    return 0;
  }

  print_bins("Figure 11: prediction oscillation range (ms) vs edge delay",
             series.bins(), cfg);
  print_section(std::cout, "In-text Vivaldi statistics (paper: DS^2)");
  Table table({"metric", "measured", "paper"});
  table.add_row({"median abs error (ms)", format_double(err.median, 1), "20"});
  table.add_row({"90th abs error (ms)", format_double(err.p90, 1), "140"});
  table.add_row(
      {"median movement (ms/step)", format_double(speed.median, 2), "1.61"});
  table.add_row(
      {"90th movement (ms/step)", format_double(speed.p90, 2), "6.18"});
  emit(table, cfg);
  return 0;
}
