// Figure 22: CDF of the TIV severity of Vivaldi neighbor edges across
// dynamic-neighbor iterations {0, 1, 2, 5, 10}. Paper shape: each iteration
// shifts the distribution left — the alert-driven neighbor update steadily
// eliminates severe-TIV edges from the probing sets.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/dynamic_neighbor.hpp"
#include "core/severity.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto period =
      static_cast<std::uint32_t>(flags.get_int("period", 100));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig22_dynneigh_severity");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const core::TivAnalyzer analyzer(space.measured);

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  core::DynamicNeighborParams dp;
  dp.period_seconds = period;
  dp.seed = 42 ^ cfg.seed;
  core::DynamicNeighborVivaldi dyn(space.measured, vp, dp);

  auto severity_cdf = [&]() {
    const auto edges = dyn.neighbor_edges();
    std::vector<double> sev(edges.size());
    parallel_for(edges.size(), [&](std::size_t e) {
      sev[e] = analyzer.edge_severity(edges[e].first, edges[e].second);
    });
    return Cdf(std::move(sev));
  };

  std::vector<std::string> names;
  std::vector<Cdf> cdfs;
  std::vector<double> means;
  const std::vector<std::uint32_t> snapshots{0, 1, 2, 5, 10};
  std::uint32_t done = 0;
  for (std::uint32_t snap : snapshots) {
    while (done < snap) {
      dyn.run_iteration();
      ++done;
    }
    names.push_back("iter" + std::to_string(snap));
    cdfs.push_back(severity_cdf());
    means.push_back(summarize(cdfs.back().sorted_values()).mean);
    (cfg.json ? std::cerr : std::cout)
        << "iteration " << snap << ": mean neighbor-edge severity = "
        << format_double(means.back(), 4) << "\n";
  }

  const std::vector<double> grid{0.0,  0.01, 0.02, 0.05, 0.10,
                                 0.15, 0.20, 0.30, 0.40, 0.50};
  if (cfg.json) {
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      json->object()
          .field("section", std::string("iteration"))
          .field("iteration", snapshots[s])
          .field("mean_severity", means[s], 4);
    }
    emit_cdf_grid_json(*json, "severity_cdf", names, cdfs, grid);
    return 0;
  }
  print_cdfs_on_grid(
      "Figure 22: TIV severity CDF of Vivaldi neighbor edges per iteration",
      names, cdfs, grid, cfg);
  return 0;
}
