// google-benchmark microbenchmarks for the core computational kernels:
// severity analysis, Vivaldi ticks, Meridian queries, policy routing, and
// overlay shortest paths.
#include <benchmark/benchmark.h>

#include <numeric>

#include "core/severity.hpp"
#include "delayspace/generate.hpp"
#include "delayspace/overlay.hpp"
#include "embedding/vivaldi.hpp"
#include "meridian/meridian.hpp"
#include "routing/policy_routing.hpp"
#include "topology/generator.hpp"
#include "util/parallel.hpp"

namespace {

using namespace tiv;

const delayspace::DelaySpace& space_of_size(std::uint32_t hosts) {
  static std::map<std::uint32_t, delayspace::DelaySpace> cache;
  auto it = cache.find(hosts);
  if (it == cache.end()) {
    delayspace::DelaySpaceParams p;
    p.topology.num_ases = std::max<std::uint32_t>(60, hosts / 8);
    p.topology.seed = 11;
    p.hosts.num_hosts = hosts;
    p.hosts.seed = 12;
    it = cache.emplace(hosts, delayspace::generate_delay_space(p)).first;
  }
  return it->second;
}

void BM_EdgeSeverity(benchmark::State& state) {
  const auto& space = space_of_size(static_cast<std::uint32_t>(state.range(0)));
  const core::TivAnalyzer analyzer(space.measured);
  delayspace::HostId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.edge_severity(i, i + 1));
    i = (i + 2) % (space.measured.size() - 1);
  }
  state.SetItemsProcessed(state.iterations() * space.measured.size());
}
BENCHMARK(BM_EdgeSeverity)->Arg(200)->Arg(400)->Arg(800);

void BM_AllSeverities(benchmark::State& state) {
  const auto& space = space_of_size(static_cast<std::uint32_t>(state.range(0)));
  const core::TivAnalyzer analyzer(space.measured);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyzer.all_severities());
  }
  const auto n = static_cast<std::int64_t>(space.measured.size());
  state.SetItemsProcessed(state.iterations() * n * n * n / 2);
}
BENCHMARK(BM_AllSeverities)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_VivaldiTick(benchmark::State& state) {
  const auto& space = space_of_size(static_cast<std::uint32_t>(state.range(0)));
  embedding::VivaldiParams p;
  embedding::VivaldiSystem sys(space.measured, p);
  for (auto _ : state) {
    sys.tick();
  }
  state.SetItemsProcessed(state.iterations() * space.measured.size());
}
BENCHMARK(BM_VivaldiTick)->Arg(400)->Arg(800);

void BM_MeridianQuery(benchmark::State& state) {
  const auto& space = space_of_size(static_cast<std::uint32_t>(state.range(0)));
  const auto n = space.measured.size();
  std::vector<delayspace::HostId> nodes(n / 2);
  std::iota(nodes.begin(), nodes.end(), 0);
  const meridian::MeridianOverlay overlay(space.measured, nodes, {});
  delayspace::HostId target = n / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        overlay.find_closest(target, nodes[target % nodes.size()]));
    target = n / 2 + (target + 1) % (n - n / 2);
  }
}
BENCHMARK(BM_MeridianQuery)->Arg(400)->Arg(800);

void BM_PolicyRouting(benchmark::State& state) {
  topology::TopologyParams p;
  p.num_ases = static_cast<std::uint32_t>(state.range(0));
  p.seed = 1;
  const auto graph = topology::generate_topology(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::PolicyRoutingMatrix(graph));
  }
  state.SetItemsProcessed(state.iterations() * p.num_ases * p.num_ases);
}
BENCHMARK(BM_PolicyRouting)->Arg(100)->Arg(300)->Unit(benchmark::kMillisecond);

void BM_OverlayPaths(benchmark::State& state) {
  const auto& space = space_of_size(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(delayspace::OverlayPaths(space.measured));
  }
}
BENCHMARK(BM_OverlayPaths)->Arg(200)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_GenerateDelaySpace(benchmark::State& state) {
  delayspace::DelaySpaceParams p;
  p.hosts.num_hosts = static_cast<std::uint32_t>(state.range(0));
  p.topology.num_ases = std::max<std::uint32_t>(60, p.hosts.num_hosts / 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(delayspace::generate_delay_space(p));
  }
}
BENCHMARK(BM_GenerateDelaySpace)
    ->Arg(200)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
