// Figure 2: cumulative distribution of TIV severity across the four
// datasets. Paper shape: most edges cause only slight violations, every
// curve has a long tail; severity tails differ per dataset.
//
// --json emits flat records (sections: samples, cdf) for machine-checkable
// regressions, including the achieved-vs-requested sample accounting.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  reject_unknown_flags(flags);

  const std::vector<double> grid{0.0,  0.01, 0.02, 0.05, 0.1, 0.2,
                                 0.4,  0.6,  0.8,  1.0,  1.5, 2.0,
                                 3.0,  5.0,  8.0,  12.0, 20.0};

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig02_severity_cdf");
    json->meta(cfg);
  }

  std::vector<std::string> names;
  std::vector<Cdf> cdfs;
  for (const auto id : delayspace::all_datasets()) {
    // PlanetLab is already small; others are scaled by --hosts/--full.
    BenchConfig c = cfg;
    if (id == delayspace::DatasetId::kPlanetLab) c.hosts = 0;
    const auto space = make_space(id, c);
    const core::TivAnalyzer analyzer(space.measured);
    const auto sampled = analyzer.sampled_severities(samples, 7 ^ cfg.seed);
    std::vector<double> severities;
    severities.reserve(sampled.size());
    for (const auto& [edge, sev] : sampled) severities.push_back(sev);
    const std::string name = delayspace::dataset_name(id);
    if (cfg.json) {
      json->object()
          .field("section", std::string("samples"))
          .field("dataset", name)
          .field("hosts", space.measured.size())
          .field("edges_requested", samples)
          .field("edges_achieved", sampled.size());
      const Cdf cdf(std::move(severities));
      for (const double x : grid) {
        json->object()
            .field("section", std::string("cdf"))
            .field("dataset", name)
            .field("severity", x, 3)
            .field("fraction", cdf.fraction_at_most(x), 4);
      }
    } else {
      names.push_back(name);
      cdfs.emplace_back(std::move(severities));
      std::cout << name << ": " << space.measured.size() << " hosts, "
                << sampled.size() << " sampled edges\n";
    }
  }

  if (!cfg.json) {
    print_cdfs_on_grid("Figure 2: CDF of TIV severity (per dataset)", names,
                       cdfs, grid, cfg);
  }
  return 0;
}
