// Figure 2: cumulative distribution of TIV severity across the four
// datasets. Paper shape: most edges cause only slight violations, every
// curve has a long tail; severity tails differ per dataset.
#include <iostream>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  reject_unknown_flags(flags);

  std::vector<std::string> names;
  std::vector<Cdf> cdfs;
  for (const auto id : delayspace::all_datasets()) {
    // PlanetLab is already small; others are scaled by --hosts/--full.
    BenchConfig c = cfg;
    if (id == delayspace::DatasetId::kPlanetLab) c.hosts = 0;
    const auto space = make_space(id, c);
    const core::TivAnalyzer analyzer(space.measured);
    const auto sampled = analyzer.sampled_severities(samples, 7 ^ cfg.seed);
    std::vector<double> severities;
    severities.reserve(sampled.size());
    for (const auto& [edge, sev] : sampled) severities.push_back(sev);
    names.push_back(delayspace::dataset_name(id));
    cdfs.emplace_back(std::move(severities));
    std::cout << names.back() << ": " << space.measured.size() << " hosts, "
              << sampled.size() << " sampled edges\n";
  }

  std::vector<double> grid{0.0,  0.01, 0.02, 0.05, 0.1, 0.2,
                           0.4,  0.6,  0.8,  1.0,  1.5, 2.0,
                           3.0,  5.0,  8.0,  12.0, 20.0};
  print_cdfs_on_grid("Figure 2: CDF of TIV severity (per dataset)", names,
                     cdfs, grid, cfg);
  return 0;
}
