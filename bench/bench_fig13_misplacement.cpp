// Figure 13: percentage of Meridian ring members misplaced by TIVs vs pair
// delay, for beta in {0.1, 0.5, 0.9}, DS^2. Paper shape: larger beta
// tolerates more (lower curves); at beta = 0.5 placement errors run
// 10-30% below 400 ms and grow sharply beyond.
#include <iostream>

#include "bench_common.hpp"
#include "meridian/misplacement.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto sample_pairs =
      static_cast<std::size_t>(flags.get_int("sample-pairs", 60000));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  for (const double beta : {0.1, 0.5, 0.9}) {
    meridian::MisplacementParams p;
    p.beta = beta;
    p.bin_width_ms = 25.0;
    p.sample_pairs = sample_pairs;
    p.seed = 13 ^ cfg.seed;
    const auto bins = meridian::misplacement_series(space.measured, p);
    print_bins("Figure 13: fraction of ring members misplaced, beta = " +
                   format_double(beta, 1),
               bins, cfg);
  }
  return 0;
}
