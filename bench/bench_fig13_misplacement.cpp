// Figure 13: percentage of Meridian ring members misplaced by TIVs vs pair
// delay, for beta in {0.1, 0.5, 0.9}, DS^2. Paper shape: larger beta
// tolerates more (lower curves); at beta = 0.5 placement errors run
// 10-30% below 400 ms and grow sharply beyond.
//
// --json emits one flat "bin" record per (beta, delay bin) for
// machine-checkable regressions.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "meridian/misplacement.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto sample_pairs =
      static_cast<std::size_t>(flags.get_int("sample-pairs", 60000));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig13_misplacement");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  for (const double beta : {0.1, 0.5, 0.9}) {
    meridian::MisplacementParams p;
    p.beta = beta;
    p.bin_width_ms = 25.0;
    p.sample_pairs = sample_pairs;
    p.seed = 13 ^ cfg.seed;
    const auto bins = meridian::misplacement_series(space.measured, p);
    if (cfg.json) {
      for (const Bin& b : bins) {
        json->object()
            .field("section", std::string("bin"))
            .field("beta", beta, 1)
            .field("delay_ms", b.x_center, 1)
            .field("p10", b.p10, 4)
            .field("median", b.median, 4)
            .field("p90", b.p90, 4)
            .field("mean", b.mean, 4)
            .field("count", b.count);
      }
    } else {
      print_bins("Figure 13: fraction of ring members misplaced, beta = " +
                     format_double(beta, 1),
                 bins, cfg);
    }
  }
  return 0;
}
