// Figure 3: TIV severity matrix reordered by cluster, rendered as ASCII
// grayscale (bright = severe). Paper shape: the three diagonal blocks
// (within-cluster) are darker than the off-diagonal (cross-cluster) areas.
// Also prints the in-text within/cross violation-count averages (paper:
// 80 within vs 206 cross for DS^2).
//
// The delay matrix is packed into one DelayMatrixView shared by the
// all-severities kernel and the batched cluster violation scans.
//
// --json emits flat records (sections: clustering, cluster_stats) for
// machine-checkable regressions; the ASCII grid is table-mode only.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/cluster_analysis.hpp"
#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto grid_size =
      static_cast<std::size_t>(flags.get_int("grid", 48));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const core::TivAnalyzer analyzer(space.measured);
  const delayspace::DelayMatrixView view(space.measured);
  if (!cfg.json) {
    std::cout << "computing all-edge severities for "
              << space.measured.size() << " hosts (O(N^3))...\n";
  }
  const core::SeverityMatrix sev = analyzer.all_severities(&view);

  const auto clustering = delayspace::cluster_delay_space(space.measured, {});
  const double rand_idx =
      delayspace::rand_index(clustering, space.host_cluster);
  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig03_cluster_matrix");
    json->meta(cfg);
  }
  if (cfg.json) {
    auto obj = json->object();
    obj.field("section", std::string("clustering"))
        .field("hosts", space.measured.size())
        .field("major_clusters", clustering.num_clusters())
        .field("noise_nodes", clustering.noise.size())
        .field("rand_index", rand_idx, 3);
  } else {
    std::cout << "clusters found: " << clustering.num_clusters()
              << " major (sizes:";
    for (const auto& m : clustering.members) std::cout << ' ' << m.size();
    std::cout << ") + " << clustering.noise.size() << " noise nodes\n";
    std::cout << "agreement with generator ground truth (Rand index): "
              << format_double(rand_idx, 3) << "\n";

    print_section(std::cout,
                  "Figure 3: severity by cluster (bright = severe TIV)");
    const auto grid = core::severity_cluster_grid(space.measured, sev,
                                                  clustering, grid_size);
    core::print_severity_grid(std::cout, grid);

    print_section(std::cout, "Within- vs cross-cluster TIV statistics");
  }
  const core::ClusterTivStats stats = core::cluster_tiv_stats(
      space.measured, sev, clustering, 4000, 77, &view);
  if (cfg.json) {
    json->object()
        .field("section", std::string("cluster_stats"))
        .field("edge_class", std::string("within"))
        .field("edges", stats.edges_within)
        .field("edges_requested", stats.edges_requested)
        .field("mean_tivs", stats.mean_violations_within, 2)
        .field("mean_severity", stats.mean_severity_within, 5);
    json->object()
        .field("section", std::string("cluster_stats"))
        .field("edge_class", std::string("cross"))
        .field("edges", stats.edges_cross)
        .field("edges_requested", stats.edges_requested)
        .field("mean_tivs", stats.mean_violations_cross, 2)
        .field("mean_severity", stats.mean_severity_cross, 5);
  } else {
    Table table({"edge class", "edges", "mean #TIVs", "mean severity"});
    table.add_row({"within-cluster", std::to_string(stats.edges_within),
                   format_double(stats.mean_violations_within, 1),
                   format_double(stats.mean_severity_within, 4)});
    table.add_row({"cross-cluster", std::to_string(stats.edges_cross),
                   format_double(stats.mean_violations_cross, 1),
                   format_double(stats.mean_severity_cross, 4)});
    emit(table, cfg);
    std::cout << "(paper, DS^2 full scale: within 80 vs cross 206 mean TIVs)\n";
  }
  return 0;
}
