// Figure 8 (DS^2): top — fraction of edges whose endpoints share a major
// cluster vs edge delay; bottom — distribution of *overlay shortest path*
// lengths vs direct edge delay. Paper shape: edges beyond ~200 ms are
// mostly cross-cluster; between ~300-550 ms the shortest alternative path
// stays flat (many alternatives -> severe TIVs), then jumps for the longest
// edges (even the best path is long -> no severe TIVs possible).
//
// --json emits flat records (sections: meta, within_cluster_bin,
// shortest_path_bin) for machine-checkable regressions.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/overlay.hpp"
#include "util/flags.hpp"

namespace {

// Local variant of bench_common's emit_bins_json keeping fig08's original
// "delay_ms" x-key (the shared helper emits a generic "x").
void emit_delay_bins_json(tiv::bench::JsonArrayWriter& json,
                          const std::string& section,
                          const std::vector<tiv::Bin>& bins) {
  for (const tiv::Bin& b : bins) {
    json.object()
        .field("section", section)
        .field("delay_ms", b.x_center, 1)
        .field("p10", b.p10, 3)
        .field("median", b.median, 3)
        .field("p90", b.p90, 3)
        .field("mean", b.mean, 3)
        .field("count", b.count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const double bin_ms = flags.get_double("bin-ms", 25.0);
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto& m = space.measured;
  const auto clustering = delayspace::cluster_delay_space(m, {});
  if (!cfg.json) {
    std::cout << "hosts: " << m.size() << ", clusters: "
              << clustering.num_clusters() << "\n";
    std::cout << "computing all-pairs overlay shortest paths (O(N^3))...\n";
  }
  const delayspace::OverlayPaths overlay(m);

  BinnedSeries within(0.0, 1000.0, bin_ms);
  BinnedSeries shortest(0.0, 1000.0, bin_ms);
  for (delayspace::HostId i = 0; i < m.size(); ++i) {
    for (delayspace::HostId j = i + 1; j < m.size(); ++j) {
      if (!m.has(i, j)) continue;
      const double d = m.at(i, j);
      within.add(d, clustering.same_cluster(i, j) ? 1.0 : 0.0);
      shortest.add(d, overlay.delay(i, j));
    }
  }
  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig08_shortest_paths");
    json.meta(cfg)
        .field("clusters", clustering.num_clusters())
        .field("measured_pairs", m.measured_pair_count());
    emit_delay_bins_json(json, "within_cluster_bin", within.bins());
    emit_delay_bins_json(json, "shortest_path_bin", shortest.bins());
    return 0;
  }
  print_bins("Figure 8 (top): fraction of within-cluster edges vs delay",
             within.bins(), cfg);
  print_bins(
      "Figure 8 (bottom): overlay shortest-path length (ms) vs edge delay",
      shortest.bins(), cfg);
  return 0;
}
