// The paper's in-text quantitative claims, each recomputed on the synthetic
// DS^2-like dataset:
//   §2.1 the severity-metric critique: among the top-10% edges by
//        violating-triangle fraction, a chunk has bottom-10% mean ratios;
//        among the top-10% by mean ratio, most cause < 3 violations;
//   §3.2 ~12% of triangles violate the triangle inequality;
//        Vivaldi median abs error ~20 ms / 90th ~140 ms; movement 1.61 /
//        6.18 ms per step;
//   §2.2 within-cluster edges average fewer violations than cross-cluster
//        (80 vs 206).
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "core/cluster_analysis.hpp"
#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto& m = space.measured;
  const core::TivAnalyzer analyzer(m);
  std::cout << "dataset: " << m.size() << " hosts\n";

  Table table({"claim", "measured", "paper"});

  // --- Violating triangle fraction.
  table.add_row({"violating triangle fraction",
                 format_double(analyzer.violating_triangle_fraction(500000), 3),
                 "0.12"});

  // --- Severity-metric critique over sampled edges.
  {
    const auto sampled = analyzer.sampled_severities(8000, 7 ^ cfg.seed);
    struct EdgeInfo {
      double frac;
      double mean_ratio;
      std::size_t violations;
    };
    std::vector<EdgeInfo> infos(sampled.size());
    parallel_for(sampled.size(), [&](std::size_t i) {
      const auto stats =
          analyzer.edge_stats(sampled[i].first.first, sampled[i].first.second);
      infos[i] = {stats.violating_fraction(), stats.mean_ratio,
                  stats.violation_count};
    });
    // Top 10% by violating fraction whose mean ratio is in the bottom 10%.
    std::vector<double> fracs;
    std::vector<double> ratios;
    for (const auto& e : infos) {
      fracs.push_back(e.frac);
      ratios.push_back(e.mean_ratio);
    }
    const double frac_p90 = percentile(fracs, 90);
    std::vector<double> nonzero_ratios;
    for (double r : ratios) {
      if (r > 0) nonzero_ratios.push_back(r);
    }
    const double ratio_p10 = percentile(nonzero_ratios, 10);
    std::size_t top_frac = 0;
    std::size_t top_frac_low_ratio = 0;
    for (const auto& e : infos) {
      if (e.frac >= frac_p90 && e.frac > 0) {
        ++top_frac;
        top_frac_low_ratio += e.mean_ratio <= ratio_p10;
      }
    }
    table.add_row(
        {"top-10%-by-#TIV edges with bottom-10% mean ratio",
         top_frac == 0 ? "-"
                       : format_double(static_cast<double>(top_frac_low_ratio) /
                                           static_cast<double>(top_frac),
                                       2),
         "0.16"});
    // Top 10% by mean ratio causing < 3 violations.
    const double ratio_p90 = percentile(nonzero_ratios, 90);
    std::size_t top_ratio = 0;
    std::size_t top_ratio_few = 0;
    for (const auto& e : infos) {
      if (e.mean_ratio >= ratio_p90 && e.mean_ratio > 0) {
        ++top_ratio;
        top_ratio_few += e.violations < 3;
      }
    }
    table.add_row(
        {"top-10%-by-ratio edges causing <3 TIVs",
         top_ratio == 0 ? "-"
                        : format_double(static_cast<double>(top_ratio_few) /
                                            static_cast<double>(top_ratio),
                                        2),
         "0.64"});
  }

  // --- Vivaldi error and movement.
  {
    embedding::VivaldiParams vp;
    vp.seed = 3 ^ cfg.seed;
    embedding::VivaldiSystem sys(m, vp);
    sys.run(100);
    embedding::MovementRecorder rec;
    for (int t = 0; t < 100; ++t) rec.record(sys.tick());
    const auto err = sys.snapshot_error(200000).absolute_error();
    const auto speed = rec.speed_summary();
    table.add_row({"Vivaldi median abs error (ms)",
                   format_double(err.median, 1), "20"});
    table.add_row({"Vivaldi 90th abs error (ms)", format_double(err.p90, 1),
                   "140"});
    table.add_row({"median movement (ms/step)", format_double(speed.median, 2),
                   "1.61"});
    table.add_row({"90th movement (ms/step)", format_double(speed.p90, 2),
                   "6.18"});
  }

  // --- Cluster violation counts.
  {
    const auto clustering = delayspace::cluster_delay_space(m, {});
    const core::SeverityMatrix sev = analyzer.all_severities();
    const auto stats = core::cluster_tiv_stats(m, sev, clustering, 4000);
    table.add_row({"mean #TIVs, within-cluster edges",
                   format_double(stats.mean_violations_within, 0), "80"});
    table.add_row({"mean #TIVs, cross-cluster edges",
                   format_double(stats.mean_violations_cross, 0), "206"});
  }

  print_section(std::cout, "In-text claims: paper vs this reproduction");
  emit(table, cfg);
  std::cout << "(absolute values depend on the synthetic matrix scale; the "
               "reproduction targets direction and rough magnitude)\n";
  return 0;
}
