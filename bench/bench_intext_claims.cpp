// The paper's in-text quantitative claims, each recomputed on the synthetic
// DS^2-like dataset:
//   §2.1 the severity-metric critique: among the top-10% edges by
//        violating-triangle fraction, a chunk has bottom-10% mean ratios;
//        among the top-10% by mean ratio, most cause < 3 violations;
//   §3.2 ~12% of triangles violate the triangle inequality;
//        Vivaldi median abs error ~20 ms / 90th ~140 ms; movement 1.61 /
//        6.18 ms per step;
//   §2.2 within-cluster edges average fewer violations than cross-cluster
//        (80 vs 206).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/cluster_analysis.hpp"
#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_intext_claims");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto& m = space.measured;
  const core::TivAnalyzer analyzer(m);
  (cfg.json ? std::cerr : std::cout) << "dataset: " << m.size() << " hosts\n";

  Table table({"claim", "measured", "paper"});
  // Each claim lands in the table and, under --json, as one flat record
  // {"section":"claim","name":...,"measured":...,"paper":...} so CI can
  // assert on individual values. NaN marks a claim that could not be
  // computed at this scale (emitted with measured_valid:false).
  auto claim = [&](const std::string& name, double measured, int decimals,
                   const std::string& paper) {
    const bool valid = !std::isnan(measured);
    table.add_row({name, valid ? format_double(measured, decimals) : "-",
                   paper});
    if (cfg.json) {
      json->object()
          .field("section", std::string("claim"))
          .field("name", name)
          .field("measured", valid ? measured : 0.0, decimals)
          .field_bool("measured_valid", valid)
          .field("paper", paper);
    }
  };

  // --- Violating triangle fraction.
  claim("violating triangle fraction",
        analyzer.violating_triangle_fraction(500000), 3, "0.12");

  // --- Severity-metric critique over sampled edges.
  {
    const auto sampled = analyzer.sampled_severities(8000, 7 ^ cfg.seed);
    struct EdgeInfo {
      double frac;
      double mean_ratio;
      std::size_t violations;
    };
    std::vector<EdgeInfo> infos(sampled.size());
    parallel_for(sampled.size(), [&](std::size_t i) {
      const auto stats =
          analyzer.edge_stats(sampled[i].first.first, sampled[i].first.second);
      infos[i] = {stats.violating_fraction(), stats.mean_ratio,
                  stats.violation_count};
    });
    // Top 10% by violating fraction whose mean ratio is in the bottom 10%.
    std::vector<double> fracs;
    std::vector<double> ratios;
    for (const auto& e : infos) {
      fracs.push_back(e.frac);
      ratios.push_back(e.mean_ratio);
    }
    const double frac_p90 = percentile(fracs, 90);
    std::vector<double> nonzero_ratios;
    for (double r : ratios) {
      if (r > 0) nonzero_ratios.push_back(r);
    }
    const double ratio_p10 = percentile(nonzero_ratios, 10);
    std::size_t top_frac = 0;
    std::size_t top_frac_low_ratio = 0;
    for (const auto& e : infos) {
      if (e.frac >= frac_p90 && e.frac > 0) {
        ++top_frac;
        top_frac_low_ratio += e.mean_ratio <= ratio_p10;
      }
    }
    claim("top-10%-by-#TIV edges with bottom-10% mean ratio",
          top_frac == 0 ? std::nan("")
                        : static_cast<double>(top_frac_low_ratio) /
                              static_cast<double>(top_frac),
          2, "0.16");
    // Top 10% by mean ratio causing < 3 violations.
    const double ratio_p90 = percentile(nonzero_ratios, 90);
    std::size_t top_ratio = 0;
    std::size_t top_ratio_few = 0;
    for (const auto& e : infos) {
      if (e.mean_ratio >= ratio_p90 && e.mean_ratio > 0) {
        ++top_ratio;
        top_ratio_few += e.violations < 3;
      }
    }
    claim("top-10%-by-ratio edges causing <3 TIVs",
          top_ratio == 0 ? std::nan("")
                         : static_cast<double>(top_ratio_few) /
                               static_cast<double>(top_ratio),
          2, "0.64");
  }

  // --- Vivaldi error and movement.
  {
    embedding::VivaldiParams vp;
    vp.seed = 3 ^ cfg.seed;
    embedding::VivaldiSystem sys(m, vp);
    sys.run(100);
    embedding::MovementRecorder rec;
    for (int t = 0; t < 100; ++t) rec.record(sys.tick());
    const auto err = sys.snapshot_error(200000).absolute_error();
    const auto speed = rec.speed_summary();
    claim("Vivaldi median abs error (ms)", err.median, 1, "20");
    claim("Vivaldi 90th abs error (ms)", err.p90, 1, "140");
    claim("median movement (ms/step)", speed.median, 2, "1.61");
    claim("90th movement (ms/step)", speed.p90, 2, "6.18");
  }

  // --- Cluster violation counts.
  {
    const auto clustering = delayspace::cluster_delay_space(m, {});
    const core::SeverityMatrix sev = analyzer.all_severities();
    const auto stats = core::cluster_tiv_stats(m, sev, clustering, 4000);
    claim("mean #TIVs, within-cluster edges", stats.mean_violations_within,
          0, "80");
    claim("mean #TIVs, cross-cluster edges", stats.mean_violations_cross, 0,
          "206");
  }

  if (cfg.json) return 0;
  print_section(std::cout, "In-text claims: paper vs this reproduction");
  emit(table, cfg);
  std::cout << "(absolute values depend on the synthetic matrix scale; the "
               "reproduction targets direction and rough magnitude)\n";
  return 0;
}
