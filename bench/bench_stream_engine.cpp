// Streaming TIV engine benchmark: trace replay through DelayStream +
// IncrementalSeverity, incremental epoch repair vs from-scratch rebuild.
//
// Two replayed workloads:
//   - "churn" sweep: per epoch, a controlled fraction of hosts receives
//     fresh measurements (disjoint random pairs), the epoch is committed
//     and repaired incrementally, and the repaired severity matrix is
//     bit-compared against TivAnalyzer::all_severities over the mutated
//     matrix. Reports updates/sec, incremental ms/epoch, full-rebuild ms,
//     and the speedup — the incremental-vs-full crossover is where speedup
//     crosses 1.
//   - "oscillation" trace: a paper-style (Figs. 10-11) square-wave delay
//     oscillation on a fixed edge set, replayed through the EWMA estimator
//     for many epochs, with a final bit-identity check — the long-horizon
//     drift test.
//
// Output is a JSON record array (machine-checkable; --json is accepted for
// CI-invocation uniformity but this bench never prints tables).
//
// Flags:
//   --quick        n = 96, 2 epochs/point (CI smoke run)
//   --hosts=N      matrix size (default 512)
//   --missing=F    missing-entry fraction (default 0.1)
//   --policy=P     latest | ewma | winmin (default ewma)
//   --epochs=E     epochs per churn point (default 4)
//   --seed=S       RNG seed
#include <algorithm>
#include <bit>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "stream/delay_stream.hpp"
#include "stream/incremental_severity.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using tiv::Rng;
using tiv::core::SeverityMatrix;
using tiv::core::TivAnalyzer;
using tiv::delayspace::DelayMatrix;
using tiv::delayspace::HostId;
using tiv::stream::DelaySample;
using tiv::stream::DelayStream;
using tiv::stream::EstimatorParams;
using tiv::stream::IncrementalSeverity;
using tiv::stream::SmoothingPolicy;

using tiv::bench::random_matrix;
using tiv::bench::time_ms;

/// Cells whose float bits differ between the maintained and the rebuilt
/// severity matrix (0 = bit-identical).
std::size_t bit_mismatches(const SeverityMatrix& got,
                           const SeverityMatrix& want) {
  std::size_t bad = 0;
  const HostId n = got.size();
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i + 1; j < n; ++j) {
      bad += std::bit_cast<std::uint32_t>(got.at(i, j)) !=
             std::bit_cast<std::uint32_t>(want.at(i, j));
    }
  }
  return bad;
}

SmoothingPolicy parse_policy(const std::string& name) {
  if (name == "latest") return SmoothingPolicy::kLatest;
  if (name == "winmin") return SmoothingPolicy::kWindowedMin;
  return SmoothingPolicy::kEwma;
}

/// One epoch of churn: `hosts` distinct hosts paired off into hosts/2
/// disjoint edges, each re-measured once. Returns samples ingested.
std::size_t replay_churn_epoch(DelayStream& stream, Rng& rng,
                               std::size_t hosts, double t) {
  const auto n = stream.matrix().size();
  const auto k = static_cast<std::uint32_t>(std::min<std::size_t>(
      hosts & ~std::size_t{1}, n & ~static_cast<std::size_t>(1)));
  const auto picks = rng.sample_without_replacement(n, k);
  std::vector<DelaySample> batch;
  batch.reserve(k / 2);
  for (std::uint32_t e = 0; e + 1 < k; e += 2) {
    batch.push_back({picks[e], picks[e + 1],
                     static_cast<float>(rng.uniform(1.0, 400.0)), t});
  }
  stream.ingest(batch);
  return batch.size();
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  flags.get_bool("json", false);  // accepted for uniformity; always JSON
  const auto n =
      static_cast<HostId>(flags.get_int("hosts", quick ? 96 : 512));
  const double missing = flags.get_double("missing", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 17));
  const int epochs = static_cast<int>(flags.get_int("epochs", quick ? 2 : 4));
  const std::string policy_name = flags.get_string("policy", "ewma");
  tiv::reject_unknown_flags(flags);

  EstimatorParams est;
  est.policy = parse_policy(policy_name);

  tiv::bench::BenchConfig bench_cfg;
  bench_cfg.hosts = n;
  bench_cfg.seed = seed;
  bench_cfg.json = true;
  tiv::bench::BenchReport json(std::cout, "bench_stream_engine");
  json.meta(bench_cfg)
      .field("epochs", epochs)
      .field("missing_fraction", missing)
      .field("policy", policy_name)
      .field("quick", quick);

  // --- Churn sweep -------------------------------------------------------
  const std::vector<double> dirty_fractions{0.004, 0.01, 0.05, 0.2};
  for (const double frac : dirty_fractions) {
    DelayStream stream(random_matrix(n, missing, seed), est);
    Rng rng(seed ^ 0x5eedull);

    std::optional<IncrementalSeverity> inc;
    const double init_ms =
        time_ms([&] { inc.emplace(stream.matrix()); });

    const auto dirty_target = std::max<std::size_t>(
        2, static_cast<std::size_t>(static_cast<double>(n) * frac));
    std::size_t samples_total = 0;
    std::size_t edges_recomputed = 0;
    std::size_t rows_repacked = 0;
    double ingest_ms = 0.0;
    double apply_ms = 0.0;
    for (int e = 0; e < epochs; ++e) {
      ingest_ms += time_ms([&] {
        samples_total +=
            replay_churn_epoch(stream, rng, dirty_target, double(e));
      });
      apply_ms += time_ms([&] {
        const auto stats = inc->apply_epoch(stream);
        edges_recomputed += stats.edges_recomputed;
        rows_repacked += stats.rows_repacked;
      });
    }

    // Full rebuild over the final mutated matrix: packed view build plus
    // the O(n^3) kernel — what every epoch would cost without the engine.
    SeverityMatrix full;
    const TivAnalyzer analyzer(stream.matrix());
    const double full_ms = time_ms([&] { full = analyzer.all_severities(); });
    const std::size_t mismatches = bit_mismatches(inc->severities(), full);

    const double inc_epoch_ms = apply_ms / epochs;
    json.object()
        .field("section", std::string("churn"))
        .field("n", n)
        .field("policy", policy_name)
        .field("missing_fraction", missing, 3)
        .field("dirty_fraction", frac, 4)
        .field("epochs", epochs)
        .field("samples", samples_total)
        .field("rows_repacked", rows_repacked)
        .field("edges_recomputed", edges_recomputed)
        .field("init_full_ms", init_ms, 3)
        .field("ingest_ms", ingest_ms, 3)
        .field("updates_per_sec",
               ingest_ms > 0.0
                   ? static_cast<double>(samples_total) / (ingest_ms / 1e3)
                   : 0.0,
               0)
        .field("incremental_epoch_ms", inc_epoch_ms, 3)
        .field("full_rebuild_ms", full_ms, 3)
        .field("speedup_vs_full",
               inc_epoch_ms > 0.0 ? full_ms / inc_epoch_ms : 0.0, 2)
        .field("bit_mismatches", mismatches);
  }

  // --- Paper-style oscillation trace ------------------------------------
  // A fixed set of n/100 disjoint edges (so ~2% of hosts dirty per epoch)
  // flips between its base delay and a 4x-inflated delay every epoch (the
  // Fig. 10/11 non-equilibrium shape), smoothed through the configured
  // estimator. Long horizon: 8x the churn epochs, bit-identity checked
  // once at the end.
  {
    EstimatorParams osc_est = est;
    DelayStream stream(random_matrix(n, missing, seed), osc_est);
    Rng rng(seed ^ 0x05c1ull);
    const auto edge_target = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(n) / 100.0));
    const auto picks = rng.sample_without_replacement(
        n, static_cast<std::uint32_t>(
               std::min<std::size_t>(2 * edge_target, n & ~std::size_t{1})));
    struct OscEdge {
      HostId a, b;
      float base;
    };
    std::vector<OscEdge> osc;
    for (std::size_t e = 0; e + 1 < picks.size(); e += 2) {
      const float base = static_cast<float>(rng.uniform(5.0, 200.0));
      osc.push_back({picks[e], picks[e + 1], base});
    }

    IncrementalSeverity inc(stream.matrix());
    const int osc_epochs = 8 * epochs;
    std::size_t samples_total = 0;
    double apply_ms = 0.0;
    for (int e = 0; e < osc_epochs; ++e) {
      const bool high = (e % 2) != 0;
      std::vector<DelaySample> batch;
      batch.reserve(osc.size());
      for (const OscEdge& oe : osc) {
        batch.push_back(
            {oe.a, oe.b, high ? oe.base * 4.0f : oe.base, double(e)});
      }
      stream.ingest(batch);
      samples_total += batch.size();
      apply_ms += time_ms([&] { inc.apply_epoch(stream); });
    }

    SeverityMatrix full;
    const TivAnalyzer analyzer(stream.matrix());
    const double full_ms = time_ms([&] { full = analyzer.all_severities(); });
    json.object()
        .field("section", std::string("oscillation"))
        .field("n", n)
        .field("policy", policy_name)
        .field("oscillating_edges", osc.size())
        .field("epochs", osc_epochs)
        .field("samples", samples_total)
        .field("incremental_epoch_ms", apply_ms / osc_epochs, 3)
        .field("full_rebuild_ms", full_ms, 3)
        .field("speedup_vs_full",
               apply_ms > 0.0
                   ? full_ms / (apply_ms / osc_epochs)
                   : 0.0,
               2)
        .field("bit_mismatches", bit_mismatches(inc.severities(), full));
  }
  return 0;
}
