// Figures 4-7: TIV severity vs edge delay (10 ms bins; 10th/median/90th
// percentiles), one series per dataset. Paper shape: longer edges cause
// more severe violations overall, but the relation is irregular (non-
// monotone humps, huge within-bin spread) — severity cannot be predicted
// from length.
//
// --json emits flat records (sections: samples, bin) for machine-checkable
// regressions, including the achieved-vs-requested sample accounting.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  const double bin_ms = flags.get_double("bin-ms", 10.0);
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig04_07_severity_vs_delay");
    json->meta(cfg);
  }

  struct FigureRef {
    delayspace::DatasetId id;
    const char* figure;
  };
  const FigureRef figures[] = {
      {delayspace::DatasetId::kDs2, "Figure 4 (DS2)"},
      {delayspace::DatasetId::kP2psim, "Figure 5 (p2psim)"},
      {delayspace::DatasetId::kMeridian, "Figure 6 (Meridian)"},
      {delayspace::DatasetId::kPlanetLab, "Figure 7 (PlanetLab)"},
  };
  for (const auto& [id, figure] : figures) {
    BenchConfig c = cfg;
    if (id == delayspace::DatasetId::kPlanetLab) c.hosts = 0;
    const auto space = make_space(id, c);
    const core::TivAnalyzer analyzer(space.measured);
    const auto sampled = analyzer.sampled_severities(samples, 11 ^ cfg.seed);
    BinnedSeries series(0.0, 1000.0, bin_ms);
    for (const auto& [edge, sev] : sampled) {
      series.add(space.measured.at(edge.first, edge.second), sev);
    }
    if (cfg.json) {
      const std::string name = delayspace::dataset_name(id);
      json->object()
          .field("section", std::string("samples"))
          .field("dataset", name)
          .field("hosts", space.measured.size())
          .field("edges_requested", samples)
          .field("edges_achieved", sampled.size());
      for (const Bin& b : series.bins()) {
        json->object()
            .field("section", std::string("bin"))
            .field("dataset", name)
            .field("delay_ms", b.x_center, 1)
            .field("p10", b.p10, 4)
            .field("median", b.median, 4)
            .field("p90", b.p90, 4)
            .field("mean", b.mean, 4)
            .field("count", b.count);
      }
    } else {
      print_bins(std::string(figure) + ": TIV severity vs edge delay",
                 series.bins(), cfg);
    }
  }
  return 0;
}
