// Figures 4-7: TIV severity vs edge delay (10 ms bins; 10th/median/90th
// percentiles), one series per dataset. Paper shape: longer edges cause
// more severe violations overall, but the relation is irregular (non-
// monotone humps, huge within-bin spread) — severity cannot be predicted
// from length.
#include <iostream>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  const double bin_ms = flags.get_double("bin-ms", 10.0);
  reject_unknown_flags(flags);

  struct FigureRef {
    delayspace::DatasetId id;
    const char* figure;
  };
  const FigureRef figures[] = {
      {delayspace::DatasetId::kDs2, "Figure 4 (DS2)"},
      {delayspace::DatasetId::kP2psim, "Figure 5 (p2psim)"},
      {delayspace::DatasetId::kMeridian, "Figure 6 (Meridian)"},
      {delayspace::DatasetId::kPlanetLab, "Figure 7 (PlanetLab)"},
  };
  for (const auto& [id, figure] : figures) {
    BenchConfig c = cfg;
    if (id == delayspace::DatasetId::kPlanetLab) c.hosts = 0;
    const auto space = make_space(id, c);
    const core::TivAnalyzer analyzer(space.measured);
    const auto sampled = analyzer.sampled_severities(samples, 11 ^ cfg.seed);
    BinnedSeries series(0.0, 1000.0, bin_ms);
    for (const auto& [edge, sev] : sampled) {
      series.add(space.measured.at(edge.first, edge.second), sev);
    }
    print_bins(std::string(figure) + ": TIV severity vs edge delay",
               series.bins(), cfg);
  }
  return 0;
}
