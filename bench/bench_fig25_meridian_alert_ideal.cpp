// Figure 25: TIV-aware Meridian in the 200-node full-ring setting (every
// Meridian node keeps all 199 others as ring members). Three curves:
// original (beta = 0.5 termination), TIV alert, and the idealized
// no-termination variant. Paper shape: TIV alert beats even the
// no-termination ideal at ~5% extra probes, because it copes with TIV
// directly instead of merely probing more.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/alert.hpp"
#include "core/tiv_aware.hpp"
#include "embedding/vivaldi.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "scenario/score.hpp"
#include "util/flags.hpp"

namespace {

// Same shared-scorer quality record as bench_fig24 (see the comment
// there): ts = 0.6 alert graded by scenario::score_ratio_alert.
void emit_alert_quality(tiv::bench::BenchReport& json,
                        const tiv::embedding::VivaldiSystem& vivaldi,
                        std::uint64_t seed) {
  const auto samples =
      tiv::core::collect_ratio_severity_samples(vivaldi, 20000, 321 ^ seed);
  std::vector<double> ratios;
  std::vector<double> severities;
  ratios.reserve(samples.size());
  severities.reserve(samples.size());
  for (const auto& s : samples) {
    ratios.push_back(s.ratio);
    severities.push_back(s.severity);
  }
  for (const double w : {0.01, 0.05}) {
    const auto q = tiv::scenario::score_ratio_alert(ratios, severities, w,
                                                    /*threshold=*/0.6);
    json.object()
        .field("section", std::string("alert_quality"))
        .field("worst_fraction", w, 2)
        .field("threshold", 0.6, 1)
        .field("precision", q.counts.precision(), 4)
        .field("recall", q.counts.recall(), 4)
        .field("f1", q.counts.f1(), 4)
        .field("alert_fraction", q.alert_fraction, 4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 800);
  const auto overlay = static_cast<std::uint32_t>(
      flags.get_int("meridian-nodes", 0));
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 3));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig25_meridian_alert_ideal");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();
  const std::uint32_t m_nodes =
      overlay != 0 ? overlay : std::max<std::uint32_t>(20, n / 20);

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(300);

  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = m_nodes;
  p.runs = runs;
  p.seed = 99 ^ cfg.seed;
  p.meridian.ring_capacity = 100000;  // full rings
  p.meridian.num_rings = 20;
  (cfg.json ? std::cerr : std::cout)
      << "hosts: " << n << ", overlay: " << m_nodes << " (full rings), runs: "
      << runs << "\n";

  const auto original = neighbor::run_meridian_experiment(space.measured, p);

  neighbor::MeridianExperimentParams p_alert = p;
  p_alert.meridian = core::tiv_aware_meridian_params(vivaldi, p.meridian);
  const auto alert =
      neighbor::run_meridian_experiment(space.measured, p_alert);

  neighbor::MeridianExperimentParams p_ideal = p;
  p_ideal.meridian.use_termination = false;
  const auto ideal =
      neighbor::run_meridian_experiment(space.measured, p_ideal);

  if (cfg.json) {
    const std::vector<std::string> names{
        "Meridian-original", "Meridian-TIV-alert", "Meridian-no-termination"};
    const neighbor::MeridianExperimentResult* results[] = {&original, &alert,
                                                           &ideal};
    emit_cdf_grid_json(*json, "penalty_cdf", names,
                       {original.penalties, alert.penalties, ideal.penalties},
                       log_grid(1.0, 10000.0), 0);
    for (int s = 0; s < 3; ++s) {
      json->object()
          .field("section", std::string("probes"))
          .field("scheme", names[s])
          .field("probes_per_query", results[s]->probes_per_query(), 1)
          .field("overhead_pct",
                 100.0 * (results[s]->probes_per_query() /
                              original.probes_per_query() -
                          1.0),
                 1)
          .field("fraction_optimal_found", results[s]->fraction_optimal_found,
                 4);
    }
    emit_alert_quality(*json, vivaldi, cfg.seed);
    return 0;
  }

  print_cdfs_on_grid(
      "Figure 25: Meridian with TIV alert (200-node full-ring setting)",
      {"Meridian-original", "Meridian-TIV-alert", "Meridian-no-termination"},
      {original.penalties, alert.penalties, ideal.penalties},
      log_grid(1.0, 10000.0), cfg, 0);

  print_section(std::cout, "Probe accounting");
  Table table({"scheme", "probes/query", "overhead %", "found optimal"});
  auto add = [&](const std::string& name,
                 const neighbor::MeridianExperimentResult& r) {
    table.add_row(
        {name, format_double(r.probes_per_query(), 1),
         format_double(100.0 * (r.probes_per_query() /
                                    original.probes_per_query() -
                                1.0),
                       1),
         format_double(r.fraction_optimal_found, 3)});
  };
  add("Meridian-original", original);
  add("Meridian-TIV-alert", alert);
  add("Meridian-no-termination", ideal);
  emit(table, cfg);
  return 0;
}
