// Out-of-core severity bench: the tiled TileStore/TileCache path vs the
// in-memory kernel.
//
// Two phases, one JSON record each (bench_common JsonArrayWriter):
//
//   equivalence  an N that fits both paths comfortably; asserts the
//                streamed severity matrix is bit-for-bit identical to
//                TivAnalyzer::all_severities and reports both timings.
//   out_of_core  an N whose packed view exceeds the cache budget; the
//                streamed path must complete with peak tile-cache bytes
//                <= budget. Reports cache hit rate / evictions — the
//                numbers quoted in docs/PERFORMANCE.md.
//
// Both phases force streaming (the budget is below the packed-view bytes),
// so the cache is genuinely exercised: without eviction the equivalence
// phase would just be a warm in-memory copy.
//
// Flags:
//   --quick        reduced sizes (CI smoke run)
//   --n=N          out-of-core phase host count (default 1024; 640 quick)
//   --tile=T       tile edge, multiple of 16 (default 64)
//   --budget-kb=B  tile-cache budget in KiB (default 512)
//   --missing=F    missing-entry fraction (default 0.1)
//   --threads=T    thread count (default: hardware)
//   --seed=S       RNG seed for the synthetic matrix
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "core/shard_severity.hpp"
#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tiv::core::SeverityMatrix;
using tiv::core::TivAnalyzer;
using tiv::delayspace::DelayMatrix;
using tiv::delayspace::HostId;
using tiv::shard::TileCache;
using tiv::shard::TileStore;

using tiv::bench::random_matrix;
using tiv::bench::time_ms;

std::size_t bitwise_mismatches(const SeverityMatrix& a,
                               const SeverityMatrix& b) {
  std::size_t mismatches = 0;
  for (HostId i = 0; i < a.size(); ++i) {
    for (HostId j = i + 1; j < a.size(); ++j) {
      mismatches += a.at(i, j) != b.at(i, j) ? 1 : 0;
    }
  }
  return mismatches;
}

struct PhaseParams {
  std::string name;
  HostId n;
  bool compare_in_memory;
};

/// Returns false when an acceptance property fails (budget overshoot or a
/// bitwise mismatch) so CI's smoke run turns red instead of just logging.
bool run_phase(tiv::bench::JsonArrayWriter& json, const PhaseParams& phase,
               std::uint32_t tile_dim, std::size_t budget_bytes,
               double missing, std::uint64_t seed) {
  const DelayMatrix m = random_matrix(phase.n, missing, seed);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("bench_shard_" + std::to_string(::getpid()) + "_" + phase.name +
        ".tiles"))
          .string();

  const double write_ms =
      time_ms([&] { TileStore::write_matrix(path, m, tile_dim); });
  const TileStore store = TileStore::open(path);
  TileCache cache(store, budget_bytes);

  SeverityMatrix streamed;
  const double streamed_ms = time_ms(
      [&] { streamed = tiv::core::all_severities_streamed(store, cache); });
  const auto stats = cache.stats();
  bool ok = stats.peak_bytes <= budget_bytes;

  auto record = json.object();
  record.field("section", std::string("shard"))
      .field("phase", phase.name)
      .field("n", phase.n)
      .field("tile_dim", tile_dim)
      .field("budget_bytes", budget_bytes)
      .field("view_bytes", tiv::core::packed_view_bytes(phase.n))
      .field("store_bytes",
             static_cast<std::uint64_t>(std::filesystem::file_size(path)))
      .field("write_ms", write_ms, 3)
      .field("streamed_ms", streamed_ms, 3)
      .field("tile_hits", stats.hits)
      .field("tile_misses", stats.misses)
      .field("evictions", stats.evictions)
      .field("peak_cache_bytes", stats.peak_bytes)
      .field_bool("peak_within_budget", stats.peak_bytes <= budget_bytes)
      .field("hit_rate", stats.hit_rate(), 4)
      .field("prefetch_drops", stats.prefetch_drops);
  if (phase.compare_in_memory) {
    SeverityMatrix in_memory;
    const double in_memory_ms = time_ms(
        [&] { in_memory = TivAnalyzer(m).all_severities(); });
    const std::size_t mismatches = bitwise_mismatches(streamed, in_memory);
    record.field("in_memory_ms", in_memory_ms, 3)
        .field("bitwise_mismatches", mismatches)
        .field_bool("bitwise_equal", mismatches == 0);
    ok = ok && mismatches == 0;
  }

  std::filesystem::remove(path);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double missing = flags.get_double("missing", 0.1);
  const auto tile_dim =
      static_cast<std::uint32_t>(flags.get_int("tile", 64));
  const std::size_t budget_flag_bytes =
      static_cast<std::size_t>(flags.get_int("budget-kb", 512)) * 1024;
  const auto n_big = static_cast<HostId>(
      flags.get_int("n", quick ? 640 : 1024));
  const auto threads = flags.get_int("threads", 0);
  tiv::reject_unknown_flags(flags);
  if (threads > 0) {
    tiv::set_parallel_thread_count(static_cast<std::size_t>(threads));
  }

  // Floor the budget at the pinned working set: each pool worker pins up
  // to 3 tiles (d_ac + two witness tiles) and the prefetcher one more, and
  // pinned tiles are never evictable — on a many-core machine the default
  // 512 KiB would otherwise be overshot by pins alone and the peak check
  // would fail with nothing wrong. The floor scales with --threads/--tile,
  // and the reported budget_bytes is the effective value.
  const std::uint32_t words_per_row = (tile_dim + 63) / 64;
  const std::size_t tile_bytes =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float) +
      static_cast<std::size_t>(tile_dim) * words_per_row *
          sizeof(std::uint64_t);
  const std::size_t pinned_floor =
      (3 * tiv::parallel_thread_count() + 2) * tile_bytes;
  const std::size_t budget_bytes = std::max(budget_flag_bytes, pinned_floor);

  // The equivalence N still exceeds the default budget (packed view of 384
  // hosts is ~600 KiB) so the streamed path under test is the evicting one.
  const HostId n_eq = quick ? 384 : 448;

  bool ok = true;
  {
    tiv::bench::BenchConfig bench_cfg;
    bench_cfg.hosts = n_big;
    bench_cfg.seed = seed;
    bench_cfg.json = true;
    tiv::bench::BenchReport json(std::cout, "bench_shard_severity");
    json.meta(bench_cfg)
        .field("tile_dim", tile_dim)
        .field("budget_bytes", budget_bytes)
        .field("missing_fraction", missing)
        .field("quick", quick);
    ok &= run_phase(json, {"equivalence", n_eq, true}, tile_dim,
                    budget_bytes, missing, seed);
    ok &= run_phase(json, {"out_of_core", n_big, false}, tile_dim,
                    budget_bytes, missing, seed);
  }
  tiv::set_parallel_thread_count(0);
  return ok ? 0 : 1;
}
