// Figure 17: the naive strawman — remove the globally worst 20% of edges by
// TIV severity from Vivaldi's neighbor selection. Paper shape: only a
// marginal improvement; TIV is too widespread for outlier removal to fix
// the embedding.
//
// --json emits flat records (sections: config, cdf, quantiles) for
// machine-checkable regressions.
#include <iostream>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "core/severity_filter.hpp"
#include "embedding/vivaldi.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 700);
  const double worst = flags.get_double("worst-fraction", 0.2);
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 5));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();
  if (!cfg.json) {
    std::cout << "computing all-edge severities (global knowledge) for " << n
              << " hosts...\n";
  }
  const core::SeverityMatrix sev =
      core::TivAnalyzer(space.measured).all_severities();
  const core::SeverityFilter filter(space.measured, sev, worst);
  if (!cfg.json) {
    std::cout << "filtered " << filter.filtered_count()
              << " edges (severity >= "
              << format_double(filter.cutoff_severity(), 3) << ")\n";
  }

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem original(space.measured, vp);
  original.run(100);

  embedding::VivaldiSystem filtered(space.measured, vp);
  core::apply_filter_to_vivaldi(filtered, filter, 31 ^ cfg.seed);
  filtered.run(100);

  neighbor::SelectionParams sp;
  sp.num_candidates = std::max<std::uint32_t>(20, n / 20);
  sp.runs = runs;
  sp.seed = 77 ^ cfg.seed;
  const neighbor::SelectionExperiment exp(space.measured, sp);

  const Cdf cdf_orig =
      exp.run([&](delayspace::HostId a, delayspace::HostId b) {
        return original.predicted(a, b);
      });
  const Cdf cdf_filt =
      exp.run([&](delayspace::HostId a, delayspace::HostId b) {
        return filtered.predicted(a, b);
      });

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig17_vivaldi_filter");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", n)
        .field("worst_fraction", worst, 3)
        .field("filtered_edges", filter.filtered_count())
        .field("cutoff_severity", filter.cutoff_severity(), 4)
        .field("runs", runs);
    const std::vector<std::string> names{"Vivaldi-original",
                                         "Vivaldi-TIV-severity-filter"};
    const std::vector<Cdf> cdfs{cdf_orig, cdf_filt};
    emit_cdf_grid_json(json, "cdf", names, cdfs, log_grid(1.0, 10000.0), 0);
    emit_cdf_quantiles_json(json, "quantiles", names, cdfs);
    return 0;
  }

  print_cdfs_on_grid(
      "Figure 17: Vivaldi with global TIV-severity filter (worst " +
          format_double(100 * worst, 0) + "% edges removed)",
      {"Vivaldi-original", "Vivaldi-TIV-severity-filter"},
      {cdf_orig, cdf_filt}, log_grid(1.0, 10000.0), cfg, 0);
  print_cdfs_by_quantile("Figure 17 (quantile view)",
                         {"Vivaldi-original", "Vivaldi-TIV-severity-filter"},
                         {cdf_orig, cdf_filt}, cfg);
  return 0;
}
