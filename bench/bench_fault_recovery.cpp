// Fault-recovery benchmark for the survivable out-of-core pipeline:
// how much cheaper targeted recovery is than throwing the stores away and
// rebuilding, across disk-rot corruption rates and kill-mid-commit points.
//
// One JSON record per scenario (bench_common JsonArrayWriter):
//
//   section "disk_rot"        a clean engine's files are corrupted on disk
//                             (a fraction of sink tiles, plus nested input
//                             rot under half of them), then reopened with
//                             ShardStreamEngine::recover and read back in
//                             full — self-healing rebuilds exactly the
//                             damaged tiles on first touch
//   section "kill_mid_commit" a deterministic torn write kills apply_epoch
//                             at a chosen commit ordinal; recover() replays
//                             the journaled epoch from the manifest
//
// Each record carries the acceptance properties CI asserts:
//   bit_mismatches     severities read back after recovery vs the in-memory
//                      all_severities of the same matrix — must be 0
//   recovered_cheaper  recovery wall time strictly below the full
//                      out-of-core rebuild of the same matrix
// plus the healed-tile / replayed-epoch counters that prove the recovery
// path (not a silent full rebuild) produced the bytes. Exit status is
// nonzero when a property fails, so a smoke run turns CI red on its own.
//
// Each record also reports recovery_action_ms — the span tracer's total of
// "recovery-action" spans (manifest replay plus every lazy tile heal), the
// recovery work alone without the surrounding clean readback — and the
// record stream ends with the registry's metrics snapshot
// ({"section":"metrics",...}: fault.injected_* vs engine.recovery.* shows
// what was thrown at the storage layer and what the healing absorbed).
//
// Flags:
//   --quick              reduced scale (CI smoke run)
//   --hosts=N            matrix size (default 384; 128 quick)
//   --tile=T             tile edge, multiple of 16 (default 32; 16 quick)
//   --missing=F          missing-entry fraction (default 0.1)
//   --dir=PATH           scratch directory (default: system temp dir)
//   --seed=S             RNG seed
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "core/shard_severity.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "shard/fault_injector.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"
#include "stream/shard_stream.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"

namespace {

using tiv::Rng;
using tiv::core::SeverityMatrix;
using tiv::core::TivAnalyzer;
using tiv::delayspace::DelayMatrix;
using tiv::delayspace::HostId;
using tiv::shard::FaultInjector;
using tiv::shard::InjectedCrash;
using tiv::stream::DelaySample;
using tiv::stream::DelayStream;
using tiv::stream::ShardStreamConfig;
using tiv::stream::ShardStreamEngine;

using tiv::bench::random_matrix;
using tiv::bench::time_ms;

std::string scratch_file(const std::string& dir, const std::string& tag) {
  return (std::filesystem::path(dir) /
          ("bench_fault_recovery_" + std::to_string(::getpid()) + "_" + tag +
           ".tiles"))
      .string();
}

/// XORs one byte of `path` at `offset` — the disk-rot primitive.
void rot_byte_at(const std::string& path, std::uint64_t offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) throw std::runtime_error("rot_byte_at: open " + path);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  const int ch = std::fgetc(f);
  std::fseek(f, static_cast<long>(offset), SEEK_SET);
  std::fputc(ch ^ 0x5a, f);
  std::fclose(f);
}

/// Engine severities (sink readback) vs the in-memory kernel: cells whose
/// float bits differ (0 = bit-identical).
std::size_t bit_mismatches(ShardStreamEngine& engine,
                           const SeverityMatrix& want) {
  std::size_t bad = 0;
  const HostId n = engine.size();
  std::vector<float> row(n);
  for (HostId a = 0; a < n; ++a) {
    engine.severity_row(a, row);
    for (HostId b = 0; b < n; ++b) {
      bad += std::bit_cast<std::uint32_t>(row[b]) !=
             std::bit_cast<std::uint32_t>(want.at(a, b));
    }
  }
  return bad;
}

/// Full out-of-core rebuild of `m` — the recovery baseline: fresh input
/// spill + full severity build to a fresh sink, all on disk.
double full_rebuild_ms(const DelayMatrix& m, std::uint32_t tile_dim,
                       const std::string& dir) {
  const std::string rb_in = scratch_file(dir, "rebuild_in");
  const std::string rb_out = scratch_file(dir, "rebuild_sev");
  const double ms = time_ms([&] {
    tiv::shard::TileStore::write_matrix(rb_in, m, tile_dim);
    const auto store = tiv::shard::TileStore::open(rb_in);
    tiv::shard::TileCache cache(store, std::size_t{8} << 20);
    tiv::sink::SeverityTileStore::create(rb_out, m.size(), tile_dim);
    auto sink = tiv::sink::SeverityTileStore::open(rb_out, /*writable=*/true);
    tiv::core::all_severities_to_sink(store, cache, sink);
  });
  std::filesystem::remove(rb_in);
  std::filesystem::remove(rb_out);
  return ms;
}

/// One epoch of localized churn: re-measures edges among the first
/// `span` hosts (the dirty set stays confined to the leading tile bands,
/// the realistic "a rack went flaky" shape — and it keeps the journaled
/// tile set a strict subset of the store).
void localized_churn(DelayStream& stream, Rng& rng, HostId span, double t) {
  std::vector<DelaySample> batch;
  for (int e = 0; e < 16; ++e) {
    const auto a = static_cast<HostId>(rng.uniform_index(span));
    const auto b = static_cast<HostId>(rng.uniform_index(span));
    if (a == b) continue;
    batch.push_back({a, b, static_cast<float>(rng.uniform(1.0, 400.0)), t});
  }
  stream.ingest(batch);
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  flags.get_bool("json", false);  // accepted for uniformity; always JSON
  const auto n =
      static_cast<HostId>(flags.get_int("hosts", quick ? 128 : 384));
  const auto tile_dim =
      static_cast<std::uint32_t>(flags.get_int("tile", quick ? 16 : 32));
  const double missing = flags.get_double("missing", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 41));
  const std::string dir = flags.get_string(
      "dir", std::filesystem::temp_directory_path().string());
  tiv::reject_unknown_flags(flags);

  const std::vector<double> rot_fractions =
      quick ? std::vector<double>{0.05} : std::vector<double>{0.01, 0.02, 0.05};

  tiv::obs::SpanTracer tracer(1 << 14);
  tiv::obs::SpanTracer::attach(&tracer);

  bool ok = true;
  {
    tiv::bench::BenchConfig bench_cfg;
    bench_cfg.hosts = n;
    bench_cfg.seed = seed;
    tiv::bench::BenchReport json(std::cout, "bench_fault_recovery");
    json.meta(bench_cfg)
        .field("tile_dim", tile_dim)
        .field("missing_fraction", missing, 3)
        .field_bool("quick", quick);

    // --- disk rot: corrupt a fraction of tiles, recover on read ----------
    for (const double frac : rot_fractions) {
      const DelayMatrix matrix = random_matrix(n, missing, seed);
      const SeverityMatrix want = TivAnalyzer(matrix).all_severities();

      ShardStreamConfig cfg;
      cfg.tile_dim = tile_dim;
      cfg.input_path = scratch_file(dir, "rot_in");
      cfg.sink_path = scratch_file(dir, "rot_sev");
      cfg.keep_files = true;
      { ShardStreamEngine build(matrix, cfg); }  // clean shutdown, files kept

      // Pick the victim sink tiles (and rot the matching input tile under
      // every other one — the nested-corruption path: healing the sink tile
      // trips over the rotten input tile mid-rebuild).
      std::vector<std::uint64_t> sink_offsets;
      std::vector<std::uint64_t> input_offsets;
      {  // offsets gathered first; stores closed before the rot
        const auto sink = tiv::sink::SeverityTileStore::open(cfg.sink_path);
        const auto input = tiv::shard::TileStore::open(cfg.input_path);
        std::vector<std::pair<std::uint32_t, std::uint32_t>> coords;
        for (std::uint32_t r = 0; r < sink.tiles_per_side(); ++r) {
          for (std::uint32_t c = r; c < sink.tiles_per_side(); ++c) {
            coords.emplace_back(r, c);
          }
        }
        const auto k = static_cast<std::uint32_t>(std::max<std::size_t>(
            1, static_cast<std::size_t>(frac *
                                        static_cast<double>(coords.size()))));
        Rng rng(seed ^ 0xd15cull);
        const auto picks = rng.sample_without_replacement(
            static_cast<HostId>(coords.size()), k);
        for (std::size_t i = 0; i < picks.size(); ++i) {
          const auto [r, c] = coords[picks[i]];
          sink_offsets.push_back(sink.tile_offset(r, c));
          if (i % 2 == 1) input_offsets.push_back(input.tile_offset(r, c));
        }
      }
      for (const std::uint64_t off : sink_offsets) {
        rot_byte_at(cfg.sink_path, off + 11);
      }
      for (const std::uint64_t off : input_offsets) {
        rot_byte_at(cfg.input_path, off + 23);
      }
      const std::size_t sink_rotted = sink_offsets.size();
      const std::size_t input_rotted = input_offsets.size();

      // Recovery: reopen + one full readback. Every rotted tile fails its
      // checksum on first touch and is rebuilt in place.
      cfg.keep_files = false;  // recovery engine owns cleanup
      const std::uint64_t heal_ns0 = tracer.total_ns("recovery-action");
      const auto t0 = std::chrono::steady_clock::now();
      auto engine = ShardStreamEngine::recover(matrix, cfg);
      const std::size_t mismatches = bit_mismatches(engine, want);
      const auto t1 = std::chrono::steady_clock::now();
      const double heal_ms =
          static_cast<double>(tracer.total_ns("recovery-action") - heal_ns0) /
          1e6;
      const double recovery_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      // Second full readback over the now-healed store: the no-fault floor.
      const double clean_ms = time_ms([&] { bit_mismatches(engine, want); });

      const double rebuild_ms = full_rebuild_ms(matrix, tile_dim, dir);
      const auto rec = engine.recovery_stats();
      const bool healed_all = rec.sink_tiles_recovered >= sink_rotted &&
                              rec.input_tiles_recovered >= input_rotted;
      const bool cheaper = recovery_ms < rebuild_ms;
      ok = ok && mismatches == 0 && healed_all && cheaper;

      json.object()
          .field("section", std::string("disk_rot"))
          .field("n", n)
          .field("tile_dim", tile_dim)
          .field("corrupt_fraction", frac, 4)
          .field("sink_tiles_corrupted", sink_rotted)
          .field("input_tiles_corrupted", input_rotted)
          .field("sink_tiles_recovered", rec.sink_tiles_recovered)
          .field("input_tiles_recovered", rec.input_tiles_recovered)
          .field("recovery_ms", recovery_ms, 3)
          .field("recovery_action_ms", heal_ms, 3)
          .field("clean_readback_ms", clean_ms, 3)
          .field("full_rebuild_ms", rebuild_ms, 3)
          .field("speedup_vs_rebuild",
                 recovery_ms > 0.0 ? rebuild_ms / recovery_ms : 0.0, 2)
          .field_bool("recovered_cheaper", cheaper)
          .field("bit_mismatches", mismatches);
    }

    // --- kill mid-commit: torn write at a chosen ordinal, then recover ---
    struct KillPoint {
      const char* name;
      bool on_input;            ///< tear an input repack vs a sink commit
      std::uint32_t ordinal;    ///< 1-based commit ordinal that tears
    };
    const KillPoint kill_points[] = {
        {"input_commit_1", true, 1},
        {"sink_commit_1", false, 1},
        {"sink_commit_3", false, 3},
    };
    for (const KillPoint& kp : kill_points) {
      DelayStream stream(random_matrix(n, missing, seed ^ 0x1a11ull));

      ShardStreamConfig cfg;
      cfg.tile_dim = tile_dim;
      cfg.input_path = scratch_file(dir, std::string("kill_in_") + kp.name);
      cfg.sink_path = scratch_file(dir, std::string("kill_sev_") + kp.name);
      cfg.keep_files = true;

      FaultInjector::Config fault;
      fault.torn_write_at_commit = kp.ordinal;
      FaultInjector injector(fault);

      bool crashed = false;
      Rng rng(seed ^ 0x6b11ull);
      {
        ShardStreamEngine engine(stream.matrix(), cfg);
        if (kp.on_input) {
          engine.set_input_fault_injector(&injector);
        } else {
          engine.set_sink_fault_injector(&injector);
        }
        localized_churn(stream, rng, static_cast<HostId>(2 * tile_dim), 1.0);
        const tiv::stream::Epoch epoch = stream.commit_epoch();
        try {
          engine.apply_epoch(stream.matrix(), epoch.dirty_hosts);
        } catch (const InjectedCrash&) {
          crashed = true;
        }
        if (kp.on_input) {
          engine.set_input_fault_injector(nullptr);
        } else {
          engine.set_sink_fault_injector(nullptr);
        }
      }  // "killed" engine abandoned; files + epoch manifest survive

      const SeverityMatrix want =
          TivAnalyzer(stream.matrix()).all_severities();
      cfg.keep_files = false;
      const std::uint64_t heal_ns0 = tracer.total_ns("recovery-action");
      const auto t0 = std::chrono::steady_clock::now();
      auto engine = ShardStreamEngine::recover(stream.matrix(), cfg);
      const auto t1 = std::chrono::steady_clock::now();
      const double recover_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double heal_ms =
          static_cast<double>(tracer.total_ns("recovery-action") - heal_ns0) /
          1e6;
      const std::size_t mismatches = bit_mismatches(engine, want);

      const double rebuild_ms =
          full_rebuild_ms(stream.matrix(), tile_dim, dir);
      const auto rec = engine.recovery_stats();
      const bool cheaper = recover_ms < rebuild_ms;
      ok = ok && crashed && rec.torn_epochs_replayed == 1 &&
           mismatches == 0 && cheaper;

      json.object()
          .field("section", std::string("kill_mid_commit"))
          .field("n", n)
          .field("tile_dim", tile_dim)
          .field("kill_point", std::string(kp.name))
          .field_bool("crash_injected", crashed)
          .field("torn_epochs_replayed", rec.torn_epochs_replayed)
          .field("recover_ms", recover_ms, 3)
          .field("recovery_action_ms", heal_ms, 3)
          .field("full_rebuild_ms", rebuild_ms, 3)
          .field("speedup_vs_rebuild",
                 recover_ms > 0.0 ? rebuild_ms / recover_ms : 0.0, 2)
          .field_bool("recovered_cheaper", cheaper)
          .field("bit_mismatches", mismatches);
    }
    tiv::bench::emit_metrics_json(json,
                                  tiv::obs::MetricsRegistry::instance()
                                      .snapshot());
  }
  tiv::obs::SpanTracer::attach(nullptr);
  return ok ? 0 : 1;
}
