// Figure 18: the same global severity filter applied to Meridian ring
// construction. Paper shape: the filter actively DEGRADES Meridian — the
// removed edges were needed for query routing, leaving rings under-
// populated (up to 50% in the paper).
//
// --json emits flat records (sections: config, cdf, ring_occupancy) for
// machine-checkable regressions.
#include <iostream>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "core/severity_filter.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 700);
  const double worst = flags.get_double("worst-fraction", 0.2);
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 3));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();
  if (!cfg.json) {
    std::cout << "computing all-edge severities for " << n << " hosts...\n";
  }
  const core::SeverityMatrix sev =
      core::TivAnalyzer(space.measured).all_severities();
  const core::SeverityFilter filter(space.measured, sev, worst);

  // Paper normal setting: half the hosts are Meridian nodes; k=16, 11
  // rings, s=2, beta=0.5.
  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = n / 2;
  p.runs = runs;
  p.seed = 99 ^ cfg.seed;

  const auto original = neighbor::run_meridian_experiment(space.measured, p);
  p.meridian.edge_filter = [&filter](delayspace::HostId a,
                                     delayspace::HostId b) {
    return filter.filtered(a, b);
  };
  const auto with_filter =
      neighbor::run_meridian_experiment(space.measured, p);

  if (!cfg.json) {
    print_cdfs_on_grid(
        "Figure 18: Meridian with global TIV-severity filter",
        {"Meridian-original", "Meridian-TIV-severity-filter"},
        {original.penalties, with_filter.penalties}, log_grid(1.0, 10000.0),
        cfg, 0);

    // Demonstrate the ring under-population mechanism.
    print_section(std::cout, "Ring occupancy (one run's overlay, summed)");
  }
  std::vector<delayspace::HostId> overlay_nodes;
  for (delayspace::HostId i = 0; i < n / 2; ++i) overlay_nodes.push_back(i);
  meridian::MeridianParams mp;
  const meridian::MeridianOverlay plain(space.measured, overlay_nodes, mp);
  mp.edge_filter = p.meridian.edge_filter;
  const meridian::MeridianOverlay pruned(space.measured, overlay_nodes, mp);
  const auto occ_a = plain.ring_occupancy();
  const auto occ_b = pruned.ring_occupancy();

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig18_meridian_filter");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", n)
        .field("worst_fraction", worst, 3)
        .field("runs", runs);
    emit_cdf_grid_json(json, "cdf",
                       {"Meridian-original", "Meridian-TIV-severity-filter"},
                       {original.penalties, with_filter.penalties},
                       log_grid(1.0, 10000.0), 0);
    for (std::size_t r = 1; r < occ_a.size(); ++r) {
      if (occ_a[r] == 0) continue;
      json.object()
          .field("section", std::string("ring_occupancy"))
          .field("ring", r)
          .field("members_original", occ_a[r])
          .field("members_filtered", occ_b[r]);
    }
    return 0;
  }

  Table table({"ring", "members (original)", "members (filtered)", "loss %"});
  for (std::size_t r = 1; r < occ_a.size(); ++r) {
    if (occ_a[r] == 0) continue;
    const double loss = 100.0 *
                        (static_cast<double>(occ_a[r]) -
                         static_cast<double>(occ_b[r])) /
                        static_cast<double>(occ_a[r]);
    table.add_row({std::to_string(r), std::to_string(occ_a[r]),
                   std::to_string(occ_b[r]), format_double(loss, 1)});
  }
  emit(table, cfg);
  std::cout << "(paper: certain rings lose up to 50% of their members)\n";
  return 0;
}
