// Figure 14: neighbor-selection penalty CDF of Meridian under IDEAL
// settings (every overlay node uses all others as ring members, termination
// disabled) on (a) an artificial Euclidean matrix and (b) the DS^2-like
// matrix. Paper shape: near-perfect on Euclidean data; on measured data
// TIVs leave ~13% of queries short of the true nearest node.
//
// --json emits flat records (sections: config, cdf, summary) for
// machine-checkable regressions.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "delayspace/euclidean.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 800);
  // Paper: 200 Meridian nodes out of 4000 -> 5%.
  const auto overlay_nodes = static_cast<std::uint32_t>(
      flags.get_int("meridian-nodes", 0));
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 3));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();
  const std::uint32_t m_nodes =
      overlay_nodes != 0 ? overlay_nodes : std::max<std::uint32_t>(20, n / 20);

  delayspace::EuclideanParams ep;
  ep.num_hosts = n;
  ep.seed = 61 ^ cfg.seed;
  const auto euclid = delayspace::euclidean_matrix(ep);

  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = m_nodes;
  p.runs = runs;
  p.seed = 99 ^ cfg.seed;
  p.meridian.ring_capacity = 100000;  // all other nodes are ring members
  p.meridian.num_rings = 20;
  p.meridian.use_termination = false;
  p.meridian.beta = 0.5;

  if (!cfg.json) {
    std::cout << "hosts: " << n << ", overlay nodes: " << m_nodes
              << ", runs: " << runs << " (idealized settings)\n";
  }
  const auto r_euclid = neighbor::run_meridian_experiment(euclid, p);
  const auto r_ds2 = neighbor::run_meridian_experiment(space.measured, p);

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig14_meridian_ideal");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", n)
        .field("overlay_nodes", m_nodes)
        .field("runs", runs);
    emit_cdf_grid_json(json, "cdf",
                       {"Meridian-Euclidean-data", "Meridian-DS2-data"},
                       {r_euclid.penalties, r_ds2.penalties},
                       log_grid(1.0, 10000.0), 0);
    for (const auto& [name, r] :
         {std::pair<std::string, const neighbor::MeridianExperimentResult&>{
              "Euclidean", r_euclid},
          {"DS2", r_ds2}}) {
      json.object()
          .field("section", std::string("summary"))
          .field("dataset", name)
          .field("fraction_optimal_found", r.fraction_optimal_found, 4)
          .field("probes_per_query", r.probes_per_query(), 1);
    }
    return 0;
  }

  print_cdfs_on_grid(
      "Figure 14: Meridian penalty CDF, idealized settings",
      {"Meridian-Euclidean-data", "Meridian-DS2-data"},
      {r_euclid.penalties, r_ds2.penalties},
      log_grid(1.0, 10000.0), cfg, 0);

  print_section(std::cout, "Summary");
  Table table({"dataset", "found optimal", "probes/query"});
  table.add_row({"Euclidean",
                 format_double(r_euclid.fraction_optimal_found, 3),
                 format_double(r_euclid.probes_per_query(), 1)});
  table.add_row({"DS2 (TIV)", format_double(r_ds2.fraction_optimal_found, 3),
                 format_double(r_ds2.probes_per_query(), 1)});
  emit(table, cfg);
  std::cout << "(paper: Meridian misses the nearest neighbor in ~13% of "
               "cases on DS^2 even under ideal settings)\n";
  return 0;
}
