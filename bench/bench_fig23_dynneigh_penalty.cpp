// Figure 23: neighbor-selection penalty CDF of dynamic-neighbor Vivaldi at
// iterations {0, 1, 2, 5, 10} vs original Vivaldi. Paper shape: penalties
// improve monotonically with iterations; by iteration 10 the curve clearly
// dominates original Vivaldi — unlike every strawman in §4.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/dynamic_neighbor.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto period =
      static_cast<std::uint32_t>(flags.get_int("period", 100));
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 5));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig23_dynneigh_penalty");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();

  neighbor::SelectionParams sp;
  sp.num_candidates = std::max<std::uint32_t>(20, n / 20);
  sp.runs = runs;
  sp.seed = 77 ^ cfg.seed;
  const neighbor::SelectionExperiment exp(space.measured, sp);
  (cfg.json ? std::cerr : std::cout)
      << "hosts: " << n << ", candidates: " << sp.num_candidates
      << ", runs: " << runs << "\n";

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  core::DynamicNeighborParams dp;
  dp.period_seconds = period;
  dp.seed = 42 ^ cfg.seed;
  core::DynamicNeighborVivaldi dyn(space.measured, vp, dp);

  auto penalty_cdf = [&]() {
    return exp.run([&](delayspace::HostId a, delayspace::HostId b) {
      return dyn.system().predicted(a, b);
    });
  };

  std::vector<std::string> names;
  std::vector<Cdf> cdfs;
  const std::vector<std::uint32_t> snapshots{0, 1, 2, 5, 10};
  std::uint32_t done = 0;
  for (std::uint32_t snap : snapshots) {
    while (done < snap) {
      dyn.run_iteration();
      ++done;
    }
    names.push_back(snap == 0 ? "Vivaldi-original"
                              : "dyn-neigh-iter" + std::to_string(snap));
    cdfs.push_back(penalty_cdf());
  }

  if (cfg.json) {
    emit_cdf_grid_json(*json, "penalty_cdf", names, cdfs,
                       log_grid(1.0, 10000.0), 0);
    emit_cdf_quantiles_json(*json, "penalty_quantiles", names, cdfs);
    return 0;
  }
  print_cdfs_on_grid(
      "Figure 23: neighbor selection, dynamic-neighbor Vivaldi",
      names, cdfs, log_grid(1.0, 10000.0), cfg, 0);
  print_cdfs_by_quantile("Figure 23 (quantile view)", names, cdfs, cfg);
  return 0;
}
