// Figure 24: TIV-aware Meridian under the paper's NORMAL setting (half the
// hosts are Meridian nodes; k=16, 11 rings, s=2, beta=0.5; ts=0.6, tl=2).
// Paper shape: the TIV alert mechanism (dual ring placement + predicted-
// delay query restart) improves the penalty CDF at ~6% extra on-demand
// probes; spending the same extra probes on a larger beta helps less.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/alert.hpp"
#include "core/tiv_aware.hpp"
#include "embedding/vivaldi.hpp"
#include "neighbor/meridian_experiment.hpp"
#include "scenario/score.hpp"
#include "util/flags.hpp"

namespace {

// Grades the ts = 0.6 alert the TIV-aware variant consults through the
// shared scenario scorer, so this figure's quality numbers come from the
// same classification core as bench_scenario and figs 20/21.
void emit_alert_quality(tiv::bench::BenchReport& json,
                        const tiv::embedding::VivaldiSystem& vivaldi,
                        std::uint64_t seed) {
  const auto samples =
      tiv::core::collect_ratio_severity_samples(vivaldi, 20000, 321 ^ seed);
  std::vector<double> ratios;
  std::vector<double> severities;
  ratios.reserve(samples.size());
  severities.reserve(samples.size());
  for (const auto& s : samples) {
    ratios.push_back(s.ratio);
    severities.push_back(s.severity);
  }
  for (const double w : {0.01, 0.05}) {
    const auto q = tiv::scenario::score_ratio_alert(ratios, severities, w,
                                                    /*threshold=*/0.6);
    json.object()
        .field("section", std::string("alert_quality"))
        .field("worst_fraction", w, 2)
        .field("threshold", 0.6, 1)
        .field("precision", q.counts.precision(), 4)
        .field("recall", q.counts.recall(), 4)
        .field("f1", q.counts.f1(), 4)
        .field("alert_fraction", q.alert_fraction, 4);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 700);
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 3));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig24_meridian_alert");
    json->meta(cfg);
  }

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();

  // Independent embedding supplying prediction ratios (paper §5.3 assumes
  // e.g. Vivaldi runs alongside).
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(300);

  neighbor::MeridianExperimentParams p;
  p.num_meridian_nodes = n / 2;
  p.runs = runs;
  p.seed = 99 ^ cfg.seed;
  (cfg.json ? std::cerr : std::cout)
      << "hosts: " << n << ", overlay: " << p.num_meridian_nodes
      << ", runs: " << runs << "\n";

  const auto original = neighbor::run_meridian_experiment(space.measured, p);

  neighbor::MeridianExperimentParams p_alert = p;
  p_alert.meridian = core::tiv_aware_meridian_params(vivaldi, p.meridian);
  const auto alert = neighbor::run_meridian_experiment(space.measured, p_alert);

  // Overhead-matched baseline: raise beta until regular Meridian spends
  // about the same probes as the TIV-aware variant.
  const double overhead = alert.probes_per_query() /
                          std::max(1.0, original.probes_per_query());
  neighbor::MeridianExperimentParams p_beta = p;
  p_beta.meridian.beta = std::min(0.95, p.meridian.beta * overhead);
  const auto beta_up = neighbor::run_meridian_experiment(space.measured, p_beta);

  if (cfg.json) {
    const char* names[] = {"Meridian-original", "Meridian-TIV-alert",
                           "Meridian-larger-beta"};
    const neighbor::MeridianExperimentResult* results[] = {&original, &alert,
                                                           &beta_up};
    for (int s = 0; s < 3; ++s) {
      for (const double x : log_grid(1.0, 10000.0)) {
        json->object()
            .field("section", std::string("penalty_cdf"))
            .field("scheme", std::string(names[s]))
            .field("penalty_pct", x, 0)
            .field("fraction_at_most", results[s]->penalties.fraction_at_most(x),
                   4);
      }
      json->object()
          .field("section", std::string("probes"))
          .field("scheme", std::string(names[s]))
          .field("probes_per_query", results[s]->probes_per_query(), 1)
          .field("overhead_pct",
                 100.0 * (results[s]->probes_per_query() /
                              original.probes_per_query() -
                          1.0),
                 1)
          .field("fraction_optimal_found", results[s]->fraction_optimal_found,
                 4)
          .field("restarted_queries", results[s]->restarted_queries);
    }
    emit_alert_quality(*json, vivaldi, cfg.seed);
    return 0;
  }

  print_cdfs_on_grid(
      "Figure 24: Meridian with TIV alert (normal setting)",
      {"Meridian-original", "Meridian-TIV-alert",
       "Meridian-larger-beta"},
      {original.penalties, alert.penalties, beta_up.penalties},
      log_grid(1.0, 10000.0), cfg, 0);

  print_section(std::cout, "Probe accounting");
  Table table({"scheme", "probes/query", "overhead %", "found optimal",
               "restarted queries"});
  auto add = [&](const std::string& name,
                 const neighbor::MeridianExperimentResult& r) {
    table.add_row(
        {name, format_double(r.probes_per_query(), 1),
         format_double(100.0 * (r.probes_per_query() /
                                    original.probes_per_query() -
                                1.0),
                       1),
         format_double(r.fraction_optimal_found, 3),
         std::to_string(r.restarted_queries)});
  };
  add("Meridian-original", original);
  add("Meridian-TIV-alert", alert);
  add("Meridian-larger-beta", beta_up);
  emit(table, cfg);
  std::cout << "(paper: TIV alert costs ~6% more probes and beats the "
               "equivalent beta increase)\n";
  return 0;
}
