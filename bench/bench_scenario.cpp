// Scenario observatory benchmark: detection quality of the live pipeline
// under ground-truthed dynamic traces (src/scenario/), regression-gated in
// CI exactly like the perf benches.
//
// For every generator family the bench (1) generates a seeded trace over a
// DS^2 delay space, (2) replays it through DelayStream ->
// ShardStreamEngine with per-epoch bit-identity verification against
// direct ingestion, (3) grades detection with the QualityScorer, and
// (4) emits one "scenario" record carrying the quality numbers CI gates:
//
//   =  bit_mismatches (0), tp/fp/fn, onsets, onsets_detected, detour
//      counts — all deterministic for a seeded trace (the severity kernel
//      is bit-identical across thread counts and the generators bake the
//      measurement noise into the trace)
//   >  precision / recall / f1 / detour_win_rate floors
//   <  replay timings (generous, like every timing gate)
//
// One extra leg replays flash_crowd with deterministic FaultInjector rot
// on both tile stores ("flash_crowd_faulted"): the engine must self-heal
// and stay bit-identical, with the recovery work reported alongside the
// (unchanged) quality numbers. Exit status is nonzero when any property
// fails, so a smoke run turns CI red on its own.
//
// Flags:
//   --quick           reduced scale (CI run: committed baseline scale)
//   --hosts=N         matrix size (default 160; 96 quick)
//   --epochs=E        trace length in epochs (default 16; 12 quick)
//   --tile=T          engine tile edge (default 32)
//   --threshold=S     headline severity threshold (default 0.1)
//   --seed=S          generator seed (default 7)
//   --dir=PATH        scratch directory for the engine's tile stores
//   --trace-dir=PATH  also save every generated trace file there
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/generators.hpp"
#include "scenario/replay.hpp"
#include "scenario/score.hpp"
#include "shard/fault_injector.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"

namespace {

using tiv::delayspace::DelayMatrix;
using tiv::scenario::DelayTrace;
using tiv::scenario::QualityScorer;
using tiv::scenario::ReplayConfig;
using tiv::scenario::ReplayDriver;
using tiv::scenario::ScorerParams;

std::string scratch_file(const std::string& dir, const std::string& tag) {
  return (std::filesystem::path(dir) /
          ("bench_scenario_" + std::to_string(::getpid()) + "_" + tag +
           ".tiles"))
      .string();
}

struct ScenarioRun {
  QualityScorer scorer;
  ReplayDriver::Result result;
  double replay_epoch_ms = 0.0;
  double truth_ms = 0.0;
  double verify_ms = 0.0;
  double score_ms = 0.0;
};

ScenarioRun replay_and_score(const DelayMatrix& base, const DelayTrace& trace,
                             const ReplayConfig& cfg,
                             const ScorerParams& scorer_params,
                             tiv::obs::SpanTracer& tracer,
                             tiv::shard::FaultInjector* input_fault = nullptr,
                             tiv::shard::FaultInjector* sink_fault = nullptr) {
  ScenarioRun run{QualityScorer(base.size(), scorer_params), {}};
  ReplayDriver driver(base, trace, cfg);
  driver.set_fault_injectors(input_fault, sink_fault);
  const std::uint64_t epoch_ns0 = tracer.total_ns("scenario-epoch");
  const std::uint64_t truth_ns0 = tracer.total_ns("scenario-truth");
  const std::uint64_t verify_ns0 = tracer.total_ns("scenario-verify");
  const std::uint64_t score_ns0 = tracer.total_ns("scenario-score");
  run.result = driver.run([&](const ReplayDriver::EpochView& view) {
    run.scorer.observe_epoch(view.truth, view.truth_severities, view.monitor,
                             view.monitor_severities);
  });
  const auto epochs = std::max<std::size_t>(1, run.result.epochs);
  run.replay_epoch_ms =
      static_cast<double>(tracer.total_ns("scenario-epoch") - epoch_ns0) /
      1e6 / static_cast<double>(epochs);
  run.truth_ms =
      static_cast<double>(tracer.total_ns("scenario-truth") - truth_ns0) /
      1e6 / static_cast<double>(epochs);
  run.verify_ms =
      static_cast<double>(tracer.total_ns("scenario-verify") - verify_ns0) /
      1e6 / static_cast<double>(epochs);
  run.score_ms =
      static_cast<double>(tracer.total_ns("scenario-score") - score_ns0) /
      1e6 / static_cast<double>(epochs);
  return run;
}

void emit_scenario_record(tiv::bench::BenchReport& json,
                          const std::string& label, const DelayTrace& trace,
                          std::uint32_t n, double threshold,
                          const ScenarioRun& run) {
  const auto& q = run.scorer.headline();
  const auto& d = run.scorer.detour();
  json.object()
      .field("section", std::string("scenario"))
      .field("scenario", label)
      .field("n", n)
      .field("epochs", run.result.epochs)
      .field("samples", run.result.samples)
      .field("truth_events", trace.total_truth_events())
      .field("severity_threshold", threshold, 3)
      .field("tp", q.counts.tp)
      .field("fp", q.counts.fp)
      .field("fn", q.counts.fn)
      .field("tn", q.counts.tn)
      .field("precision", q.counts.precision(), 4)
      .field("recall", q.counts.recall(), 4)
      .field("f1", q.counts.f1(), 4)
      .field("onsets", q.onsets)
      .field("onsets_detected", q.onsets_detected)
      .field("onsets_missed", q.onsets_missed)
      .field("time_to_detect_epochs", q.mean_time_to_detect(), 3)
      .field("clears", q.clears)
      .field("clears_confirmed", q.clears_confirmed)
      .field("time_to_clear_epochs", q.mean_time_to_clear(), 3)
      .field("detour_trials", d.trials)
      .field("detour_relay_found", d.relay_found)
      .field("detour_wins", d.wins)
      .field("detour_win_rate", d.win_rate(), 4)
      .field("bit_mismatches", run.result.bit_mismatches)
      .field("edges_recomputed", run.result.edges_recomputed)
      .field("input_tiles_recovered", run.result.recovery.input_tiles_recovered)
      .field("sink_tiles_recovered", run.result.recovery.sink_tiles_recovered)
      .field("io_retries", run.result.recovery.io_retries)
      .field("replay_epoch_ms", run.replay_epoch_ms, 3)
      .field("truth_epoch_ms", run.truth_ms, 3)
      .field("verify_epoch_ms", run.verify_ms, 3)
      .field("score_epoch_ms", run.score_ms, 3);
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  flags.get_bool("json", false);  // accepted for uniformity; always JSON
  const auto n = static_cast<tiv::delayspace::HostId>(
      flags.get_int("hosts", quick ? 96 : 160));
  const auto epochs =
      static_cast<std::uint32_t>(flags.get_int("epochs", quick ? 12 : 16));
  const auto tile_dim =
      static_cast<std::uint32_t>(flags.get_int("tile", 32));
  const double threshold = flags.get_double("threshold", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const std::string dir = flags.get_string(
      "dir", std::filesystem::temp_directory_path().string());
  const std::string trace_dir = flags.get_string("trace-dir", "");
  tiv::reject_unknown_flags(flags);

  // Same pinned-working-set budget floor as bench_shard_stream: the
  // band-pair drivers pin <= 3 input tiles per worker plus one prefetch,
  // sink reads pin one tile per reader.
  const std::size_t in_tile_bytes =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float) +
      static_cast<std::size_t>(tile_dim) * ((tile_dim + 63) / 64) *
          sizeof(std::uint64_t);
  const std::size_t out_tile_bytes =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float);
  const std::size_t input_budget = std::max<std::size_t>(
      std::size_t{256} << 10,
      (3 * tiv::parallel_thread_count() + 2) * in_tile_bytes);
  const std::size_t output_budget = std::max<std::size_t>(
      std::size_t{128} << 10,
      (tiv::parallel_thread_count() + 1) * out_tile_bytes);

  tiv::obs::SpanTracer tracer(1 << 14);
  tiv::obs::SpanTracer::attach(&tracer);

  bool ok = true;
  {
    tiv::bench::BenchConfig bench_cfg;
    bench_cfg.hosts = n;
    bench_cfg.seed = seed;
    tiv::bench::BenchReport json(std::cout, "bench_scenario");
    json.meta(bench_cfg)
        .field("epochs", epochs)
        .field("tile_dim", tile_dim)
        .field("severity_threshold", threshold, 3)
        .field_bool("quick", quick);

    const auto space = tiv::bench::make_space(tiv::delayspace::DatasetId::kDs2,
                                              bench_cfg);
    const DelayMatrix& base = space.measured;

    tiv::scenario::ScenarioParams params;
    params.epochs = epochs;
    params.seed = seed;

    ScorerParams scorer_params;
    scorer_params.severity_threshold = threshold;
    scorer_params.threshold_sweep = {threshold * 0.5, threshold * 2.0};

    for (const auto& family : tiv::scenario::scenario_families()) {
      const DelayTrace trace =
          tiv::scenario::generate_scenario(family, base, params);
      if (!trace_dir.empty()) {
        trace.save((std::filesystem::path(trace_dir) / (family + ".tivtrace"))
                       .string());
      }

      ReplayConfig cfg;
      cfg.engine = ReplayConfig::Engine::kShard;
      cfg.shard.tile_dim = tile_dim;
      cfg.shard.input_budget_bytes = input_budget;
      cfg.shard.output_budget_bytes = output_budget;
      cfg.shard.input_path = scratch_file(dir, family + "_in");
      cfg.shard.sink_path = scratch_file(dir, family + "_sev");
      const ScenarioRun run =
          replay_and_score(base, trace, cfg, scorer_params, tracer);
      ok = ok && run.result.bit_mismatches == 0;

      emit_scenario_record(json, family, trace, n, threshold, run);
      // Sweep records: the same replay graded at tighter/looser
      // thresholds (informational, not gated).
      for (std::size_t t = 1; t < run.scorer.thresholds().size(); ++t) {
        const auto& tq = run.scorer.thresholds()[t];
        json.object()
            .field("section", std::string("threshold_sweep"))
            .field("scenario", family)
            .field("n", n)
            .field("threshold", tq.threshold, 3)
            .field("tp", tq.counts.tp)
            .field("fp", tq.counts.fp)
            .field("fn", tq.counts.fn)
            .field("precision", tq.counts.precision(), 4)
            .field("recall", tq.counts.recall(), 4)
            .field("f1", tq.counts.f1(), 4)
            .field("time_to_detect_epochs", tq.mean_time_to_detect(), 3);
      }
    }

    // Fault-soak leg: the same flash_crowd trace under deterministic rot
    // on both stores. Self-healing must keep the replay bit-identical, so
    // every quality number matches the clean flash_crowd record — only the
    // recovery counters differ.
    {
      const DelayTrace trace =
          tiv::scenario::generate_scenario("flash_crowd", base, params);
      tiv::shard::FaultInjector::Config fc;
      fc.seed = seed ^ 0xfau;
      fc.bitflip_every_kth_read = 61;
      tiv::shard::FaultInjector input_fault(fc);
      fc.seed = seed ^ 0xfbu;
      tiv::shard::FaultInjector sink_fault(fc);

      ReplayConfig cfg;
      cfg.engine = ReplayConfig::Engine::kShard;
      cfg.shard.tile_dim = tile_dim;
      cfg.shard.input_budget_bytes = input_budget;
      cfg.shard.output_budget_bytes = output_budget;
      cfg.shard.input_path = scratch_file(dir, "faulted_in");
      cfg.shard.sink_path = scratch_file(dir, "faulted_sev");
      const ScenarioRun run = replay_and_score(
          base, trace, cfg, scorer_params, tracer, &input_fault, &sink_fault);
      const std::size_t injected =
          input_fault.stats().bitflips + sink_fault.stats().bitflips;
      // The soak only proves something if rot actually landed.
      ok = ok && run.result.bit_mismatches == 0 && injected > 0;

      emit_scenario_record(json, "flash_crowd_faulted", trace, n, threshold,
                           run);
    }

    tiv::bench::emit_metrics_json(
        json, tiv::obs::MetricsRegistry::instance().snapshot());
  }
  tiv::obs::SpanTracer::attach(nullptr);
  return ok ? 0 : 1;
}
