// Shared scaffolding for the figure-regeneration benches.
//
// Every bench accepts:
//   --hosts=N   host count for the main dataset (default: bench-specific
//               reduced scale; the TIV analysis is O(N^3))
//   --full      run at the paper's full dataset sizes instead
//   --seed=S    xor-ed into the generator seeds
//   --csv       print tables as CSV instead of aligned text
//   --json      emit a JsonArrayWriter record stream instead of tables
//               (machine-checkable regressions; benches opt in by checking
//               cfg.json — the kernel benches are JSON-only regardless)
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "delayspace/datasets.hpp"
#include "delayspace/delay_matrix.hpp"
#include "obs/metrics.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tiv::bench {

struct BenchConfig {
  std::uint32_t hosts = 0;  ///< 0 = dataset full size
  std::uint64_t seed = 0;
  bool csv = false;
  bool json = false;  ///< JSON record stream instead of tables
};

/// Parses the standard flags. default_hosts is the reduced scale used when
/// neither --hosts nor --full is given.
inline BenchConfig parse_config(const Flags& flags,
                                std::uint32_t default_hosts) {
  BenchConfig c;
  const bool full = flags.get_bool("full", false);
  c.hosts = static_cast<std::uint32_t>(
      flags.get_int("hosts", full ? 0 : default_hosts));
  c.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  c.csv = flags.get_bool("csv", false);
  c.json = flags.get_bool("json", false);
  return c;
}

/// Generates a dataset preset at the configured scale.
inline delayspace::DelaySpace make_space(delayspace::DatasetId id,
                                         const BenchConfig& c) {
  auto params = delayspace::dataset_params(id, c.hosts);
  params.topology.seed ^= c.seed;
  params.hosts.seed ^= c.seed;
  return delayspace::generate_delay_space(params);
}

inline void emit(const Table& table, const BenchConfig& c) {
  if (c.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Prints several named CDFs as one table: rows are cumulative-fraction
/// levels, cells are the value at that quantile per series. This is the
/// transposed form of the paper's CDF plots (readable as "the q-th
/// percentile penalty of scheme X is ...").
inline void print_cdfs_by_quantile(const std::string& title,
                                   const std::vector<std::string>& names,
                                   const std::vector<Cdf>& cdfs,
                                   const BenchConfig& c) {
  print_section(std::cout, title);
  std::vector<std::string> header{"quantile"};
  header.insert(header.end(), names.begin(), names.end());
  Table table(header);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    std::vector<std::string> row{format_double(q, 2)};
    for (const Cdf& cdf : cdfs) {
      row.push_back(cdf.empty() ? "-" : format_double(cdf.quantile(q), 2));
    }
    table.add_row(std::move(row));
  }
  emit(table, c);
}

/// Prints several named CDFs sampled on a fixed x grid: rows are x values,
/// cells are F(x) — the same orientation as the paper's figures.
inline void print_cdfs_on_grid(const std::string& title,
                               const std::vector<std::string>& names,
                               const std::vector<Cdf>& cdfs,
                               const std::vector<double>& grid,
                               const BenchConfig& c, int x_precision = 2) {
  print_section(std::cout, title);
  std::vector<std::string> header{"x"};
  header.insert(header.end(), names.begin(), names.end());
  Table table(header);
  for (double x : grid) {
    std::vector<std::string> row{format_double(x, x_precision)};
    for (const Cdf& cdf : cdfs) {
      row.push_back(format_double(cdf.fraction_at_most(x), 3));
    }
    table.add_row(std::move(row));
  }
  emit(table, c);
}

/// Prints a binned error-bar series (the paper's Figs. 4-8, 11, 13, 19).
inline void print_bins(const std::string& title, const std::vector<Bin>& bins,
                       const BenchConfig& c, int x_precision = 1) {
  print_section(std::cout, title);
  Table table({"x", "p10", "median", "p90", "mean", "count"});
  for (const Bin& b : bins) {
    table.add_row({format_double(b.x_center, x_precision),
                   format_double(b.p10, 3),
                   format_double(b.median, 3), format_double(b.p90, 3),
                   format_double(b.mean, 3), std::to_string(b.count)});
  }
  emit(table, c);
}

/// Repeated-timing summary: min-of-k (the regression-gate number — least
/// noise-contaminated), plus mean and relative spread so a baseline diff
/// can tell a real regression from a noisy box.
struct Timing {
  double best_ms = 0.0;  ///< minimum over reps — the gated metric
  double mean_ms = 0.0;
  double spread = 0.0;  ///< (max - min) / min; 0 when min is 0
  int reps = 1;
};

/// Streaming emitter for the machine-checkable kernel benches: a JSON array
/// of flat records, one object per measurement, so future PRs can diff
/// trajectories with jq instead of parsing aligned tables.
///
///   JsonArrayWriter json(std::cout);
///   json.object().field("n", n).field("ms", ms, 3).field_sig("err", e, 3);
///
/// The Object temporary closes itself at the end of the full expression;
/// the writer closes the array on destruction.
class JsonArrayWriter {
 public:
  class Object {
   public:
    explicit Object(std::ostream& out) : out_(out) { out_ << "{"; }
    /// Move transfers the close-brace duty (lets factories like
    /// BenchReport::meta return a prefilled record for the caller to
    /// extend); the moved-from object writes nothing.
    Object(Object&& o) noexcept : out_(o.out_), first_(o.first_) {
      o.active_ = false;
    }
    ~Object() {
      if (active_) out_ << "}";
    }
    Object(const Object&) = delete;
    Object& operator=(const Object&) = delete;
    Object& operator=(Object&&) = delete;

    /// One template for every integer type (size_t is unsigned long on
    /// LP64 glibc but unsigned long long elsewhere; per-type overloads
    /// would be ambiguous on one platform or the other). bool is excluded
    /// — use field_bool.
    template <typename T,
              std::enable_if_t<std::is_integral_v<T> &&
                                   !std::is_same_v<T, bool>,
                               int> = 0>
    Object& field(const std::string& key, T v) {
      if constexpr (std::is_signed_v<T>) {
        sep() << quoted(key) << ":" << static_cast<std::int64_t>(v);
      } else {
        sep() << quoted(key) << ":" << static_cast<std::uint64_t>(v);
      }
      return *this;
    }
    /// Fixed-point with `decimals` fractional digits (timings, fractions).
    Object& field(const std::string& key, double v, int decimals = 3) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
      sep() << quoted(key) << ":" << buf;
      return *this;
    }
    /// Significant-digit form (errors spanning decades; emits e.g. 1.2e-09).
    Object& field_sig(const std::string& key, double v, int significant = 3) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g", significant, v);
      sep() << quoted(key) << ":" << buf;
      return *this;
    }
    Object& field(const std::string& key, const std::string& v) {
      sep() << quoted(key) << ":" << quoted(v);
      return *this;
    }
    Object& field_bool(const std::string& key, bool v) {
      sep() << quoted(key) << ":" << (v ? "true" : "false");
      return *this;
    }
    /// The standard repeated-timing fields: "ms" is min-of-reps (the
    /// number benchdiff gates), mean/spread qualify the measurement.
    Object& timing(const Timing& t) {
      return field("ms", t.best_ms, 3)
          .field("ms_mean", t.mean_ms, 3)
          .field("ms_spread", t.spread, 3)
          .field("reps", t.reps);
    }

   private:
    std::ostream& sep() {
      if (!first_) out_ << ",";
      first_ = false;
      return out_;
    }
    static std::string quoted(const std::string& s) {
      std::string out = "\"";
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return out;
    }

    std::ostream& out_;
    bool first_ = true;
    bool active_ = true;  ///< false once moved-from: dtor writes nothing
  };

  explicit JsonArrayWriter(std::ostream& out) : out_(out) { out_ << "[\n"; }
  ~JsonArrayWriter() { out_ << "\n]\n"; }
  JsonArrayWriter(const JsonArrayWriter&) = delete;
  JsonArrayWriter& operator=(const JsonArrayWriter&) = delete;

  /// Starts the next record (indented, comma-separated from the previous).
  Object object() {
    if (!first_) out_ << ",\n";
    first_ = false;
    out_ << "  ";
    return Object(out_);
  }

 private:
  std::ostream& out_;
  bool first_ = true;
};

/// The unified bench JSON envelope (docs/OBSERVABILITY.md, "Benchmark
/// methodology & baselines"). A BenchReport is a JsonArrayWriter whose
/// first record is a {"section":"meta"} envelope carrying everything a
/// baseline differ needs to refuse apples-to-oranges comparisons:
///
///   {"section":"meta","schema_version":1,"bench":"bench_severity_kernel",
///    "build":"release","obs_enabled":true,"hw_threads":4,
///    "hosts":0,"seed":7, ...bench-specific config chained by the caller}
///
/// Usage:
///   BenchReport report(std::cout, "bench_severity_kernel");
///   report.meta(cfg).field("reps", reps).field("quick", ...);
///   report.object().field("section", "engine")...;   // as before
///
/// tools/benchdiff keys on schema_version (mismatch = structural error,
/// exit 2) and on bench to reject diffing unrelated runs.
class BenchReport : public JsonArrayWriter {
 public:
  /// Bump when the envelope or the shared record conventions change
  /// incompatibly; benchdiff refuses to diff across versions.
  static constexpr int kSchemaVersion = 1;

  BenchReport(std::ostream& out, std::string bench)
      : JsonArrayWriter(out), bench_(std::move(bench)) {}

  /// Opens the meta record — call exactly once, before any other record.
  /// Returns the still-open Object so callers chain bench-specific config
  /// (sizes, thread sweeps, tile dims); it closes at the end of the full
  /// expression like any other record.
  Object meta(const BenchConfig& cfg) {
    Object o = object();
    o.field("section", std::string("meta"))
        .field("schema_version", kSchemaVersion)
        .field("bench", bench_)
        .field("build", std::string(
#ifdef NDEBUG
                            "release"
#else
                            "debug"
#endif
                            ))
        .field_bool("obs_enabled", obs::kEnabled)
        .field("hw_threads", std::thread::hardware_concurrency())
        .field("hosts", cfg.hosts)
        .field("seed", cfg.seed);
    return o;
  }

 private:
  std::string bench_;
};

/// Embeds a registry metrics snapshot into a bench's JSON record stream:
/// one flat {"section":"metrics",...} record per metric, so regressions in
/// telemetry totals (I/O volume, cache hit rates, repair counts) are as
/// diffable as the timing records. Pass a delta_since() snapshot to scope
/// the records to one bench phase.
inline void emit_metrics_json(JsonArrayWriter& json,
                              const obs::MetricsSnapshot& snap) {
  for (const auto& [name, value] : snap.counters) {
    json.object()
        .field("section", std::string("metrics"))
        .field("kind", std::string("counter"))
        .field("name", name)
        .field("value", value);
  }
  for (const auto& [name, value] : snap.gauges) {
    json.object()
        .field("section", std::string("metrics"))
        .field("kind", std::string("gauge"))
        .field("name", name)
        .field("value", value);
  }
  for (const auto& [name, h] : snap.histograms) {
    json.object()
        .field("section", std::string("metrics"))
        .field("kind", std::string("histogram"))
        .field("name", name)
        .field("count", h.count)
        .field("sum", h.sum)
        .field("mean", h.mean(), 1)
        .field("p50", h.quantile(0.5), 1)
        .field("p90", h.quantile(0.9), 1)
        .field("p99", h.quantile(0.99), 1);
  }
}

/// JSON twin of print_cdfs_on_grid: one record per (series, x) with the
/// fraction at-most x — the orientation the paper's CDF figures use.
inline void emit_cdf_grid_json(JsonArrayWriter& json,
                               const std::string& section,
                               const std::vector<std::string>& names,
                               const std::vector<Cdf>& cdfs,
                               const std::vector<double>& grid,
                               int x_decimals = 3) {
  for (std::size_t s = 0; s < names.size(); ++s) {
    for (const double x : grid) {
      json.object()
          .field("section", section)
          .field("series", names[s])
          .field("x", x, x_decimals)
          .field("fraction", cdfs[s].fraction_at_most(x), 4);
    }
  }
}

/// JSON twin of print_cdfs_by_quantile: one record per (series, quantile).
inline void emit_cdf_quantiles_json(JsonArrayWriter& json,
                                    const std::string& section,
                                    const std::vector<std::string>& names,
                                    const std::vector<Cdf>& cdfs) {
  for (std::size_t s = 0; s < names.size(); ++s) {
    if (cdfs[s].empty()) continue;
    for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
      json.object()
          .field("section", section)
          .field("series", names[s])
          .field("quantile", q, 2)
          .field("value", cdfs[s].quantile(q), 4);
    }
  }
}

/// JSON twin of print_bins: one record per bin with the error-bar stats.
inline void emit_bins_json(JsonArrayWriter& json, const std::string& section,
                           const std::vector<Bin>& bins, int x_decimals = 2) {
  for (const Bin& b : bins) {
    json.object()
        .field("section", section)
        .field("x", b.x_center, x_decimals)
        .field("p10", b.p10, 4)
        .field("median", b.median, 4)
        .field("p90", b.p90, 4)
        .field("mean", b.mean, 4)
        .field("count", b.count);
  }
}

/// Synthetic uniform-random RTT matrix for the kernel benches: cost
/// depends only on n and the missing pattern, and this keeps large-n
/// setups cheap compared to generating a full delay space.
inline delayspace::DelayMatrix random_matrix(delayspace::HostId n,
                                             double missing_fraction,
                                             std::uint64_t seed) {
  delayspace::DelayMatrix m(n);
  Rng rng(seed);
  for (delayspace::HostId i = 0; i < n; ++i) {
    for (delayspace::HostId j = i + 1; j < n; ++j) {
      if (rng.bernoulli(missing_fraction)) continue;
      m.set(i, j, static_cast<float>(rng.uniform(1.0, 400.0)));
    }
  }
  return m;
}

/// Wall time of one invocation of fn, in milliseconds.
inline double time_ms(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// Best-of-reps wall time of fn, which must assign its result out of the
/// timed region so the work is not optimized away.
inline double best_ms(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) best = std::min(best, time_ms(fn));
  return best;
}

/// best_ms plus dispersion: runs fn `reps` times and keeps min, mean and
/// the (max-min)/min relative spread. The min is what the regression gate
/// compares (least contaminated by scheduler noise); the spread is how a
/// reader judges whether the box was quiet.
inline Timing repeat_ms(int reps, const std::function<void()>& fn) {
  Timing t;
  t.reps = reps < 1 ? 1 : reps;
  double sum = 0.0;
  double worst = 0.0;
  t.best_ms = 1e300;
  for (int r = 0; r < t.reps; ++r) {
    const double ms = time_ms(fn);
    sum += ms;
    t.best_ms = std::min(t.best_ms, ms);
    worst = std::max(worst, ms);
  }
  t.mean_ms = sum / static_cast<double>(t.reps);
  t.spread = t.best_ms > 0.0 ? (worst - t.best_ms) / t.best_ms : 0.0;
  return t;
}

/// Log-spaced grid (the paper's percentage-penalty CDFs use a log x axis
/// from 10^0 to 10^4).
inline std::vector<double> log_grid(double lo, double hi,
                                    std::size_t points_per_decade = 2) {
  std::vector<double> grid;
  for (double x = lo; x <= hi * 1.0001;
       x *= std::pow(10.0, 1.0 / static_cast<double>(points_per_decade))) {
    grid.push_back(x);
  }
  return grid;
}

}  // namespace tiv::bench
