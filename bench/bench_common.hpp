// Shared scaffolding for the figure-regeneration benches.
//
// Every bench accepts:
//   --hosts=N   host count for the main dataset (default: bench-specific
//               reduced scale; the TIV analysis is O(N^3))
//   --full      run at the paper's full dataset sizes instead
//   --seed=S    xor-ed into the generator seeds
//   --csv       print tables as CSV instead of aligned text
#pragma once

#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "delayspace/datasets.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tiv::bench {

struct BenchConfig {
  std::uint32_t hosts = 0;  ///< 0 = dataset full size
  std::uint64_t seed = 0;
  bool csv = false;
};

/// Parses the standard flags. default_hosts is the reduced scale used when
/// neither --hosts nor --full is given.
inline BenchConfig parse_config(const Flags& flags,
                                std::uint32_t default_hosts) {
  BenchConfig c;
  const bool full = flags.get_bool("full", false);
  c.hosts = static_cast<std::uint32_t>(
      flags.get_int("hosts", full ? 0 : default_hosts));
  c.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
  c.csv = flags.get_bool("csv", false);
  return c;
}

/// Generates a dataset preset at the configured scale.
inline delayspace::DelaySpace make_space(delayspace::DatasetId id,
                                         const BenchConfig& c) {
  auto params = delayspace::dataset_params(id, c.hosts);
  params.topology.seed ^= c.seed;
  params.hosts.seed ^= c.seed;
  return delayspace::generate_delay_space(params);
}

inline void emit(const Table& table, const BenchConfig& c) {
  if (c.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

/// Prints several named CDFs as one table: rows are cumulative-fraction
/// levels, cells are the value at that quantile per series. This is the
/// transposed form of the paper's CDF plots (readable as "the q-th
/// percentile penalty of scheme X is ...").
inline void print_cdfs_by_quantile(const std::string& title,
                                   const std::vector<std::string>& names,
                                   const std::vector<Cdf>& cdfs,
                                   const BenchConfig& c) {
  print_section(std::cout, title);
  std::vector<std::string> header{"quantile"};
  header.insert(header.end(), names.begin(), names.end());
  Table table(header);
  for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    std::vector<std::string> row{format_double(q, 2)};
    for (const Cdf& cdf : cdfs) {
      row.push_back(cdf.empty() ? "-" : format_double(cdf.quantile(q), 2));
    }
    table.add_row(std::move(row));
  }
  emit(table, c);
}

/// Prints several named CDFs sampled on a fixed x grid: rows are x values,
/// cells are F(x) — the same orientation as the paper's figures.
inline void print_cdfs_on_grid(const std::string& title,
                               const std::vector<std::string>& names,
                               const std::vector<Cdf>& cdfs,
                               const std::vector<double>& grid,
                               const BenchConfig& c, int x_precision = 2) {
  print_section(std::cout, title);
  std::vector<std::string> header{"x"};
  header.insert(header.end(), names.begin(), names.end());
  Table table(header);
  for (double x : grid) {
    std::vector<std::string> row{format_double(x, x_precision)};
    for (const Cdf& cdf : cdfs) {
      row.push_back(format_double(cdf.fraction_at_most(x), 3));
    }
    table.add_row(std::move(row));
  }
  emit(table, c);
}

/// Prints a binned error-bar series (the paper's Figs. 4-8, 11, 13, 19).
inline void print_bins(const std::string& title, const std::vector<Bin>& bins,
                       const BenchConfig& c, int x_precision = 1) {
  print_section(std::cout, title);
  Table table({"x", "p10", "median", "p90", "mean", "count"});
  for (const Bin& b : bins) {
    table.add_row({format_double(b.x_center, x_precision),
                   format_double(b.p10, 3),
                   format_double(b.median, 3), format_double(b.p90, 3),
                   format_double(b.mean, 3), std::to_string(b.count)});
  }
  emit(table, c);
}

/// Log-spaced grid (the paper's percentage-penalty CDFs use a log x axis
/// from 10^0 to 10^4).
inline std::vector<double> log_grid(double lo, double hi,
                                    std::size_t points_per_decade = 2) {
  std::vector<double> grid;
  for (double x = lo; x <= hi * 1.0001;
       x *= std::pow(10.0, 1.0 / static_cast<double>(points_per_decade))) {
    grid.push_back(x);
  }
  return grid;
}

}  // namespace tiv::bench
