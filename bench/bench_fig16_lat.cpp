// Figure 16: neighbor-selection penalty CDF of Vivaldi with the Localized
// Adjustment Term vs original Vivaldi, DS^2. Paper shape: LAT is only
// marginally different — aggregate-accuracy fixes do not fix neighbor
// selection.
//
// --json emits flat records (sections: config, cdf, quantiles,
// aggregate_error) for machine-checkable regressions.
#include <iostream>

#include "bench_common.hpp"
#include "embedding/lat.hpp"
#include "embedding/vivaldi.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 800);
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 5));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();

  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(100);
  const embedding::LatAdjustment lat(vivaldi);

  neighbor::SelectionParams sp;
  sp.num_candidates = std::max<std::uint32_t>(20, n / 20);
  sp.runs = runs;
  sp.seed = 77 ^ cfg.seed;
  const neighbor::SelectionExperiment exp(space.measured, sp);
  if (!cfg.json) {
    std::cout << "hosts: " << n << ", candidates: " << sp.num_candidates
              << ", runs: " << runs << "\n";
  }

  const Cdf cdf_lat =
      exp.run([&](delayspace::HostId a, delayspace::HostId b) {
        return lat.predicted(vivaldi, a, b);
      });
  const Cdf cdf_vivaldi =
      exp.run([&](delayspace::HostId a, delayspace::HostId b) {
        return vivaldi.predicted(a, b);
      });

  // Aggregate prediction accuracy, for contrast: LAT helps here even though
  // it does not help neighbor selection.
  const auto plain_err = vivaldi.snapshot_error(50000).absolute_error();
  ErrorAccumulator lat_acc;
  for (int k = 0; k < 50000; ++k) {
    const auto i = static_cast<delayspace::HostId>(
        static_cast<std::uint32_t>(k * 2654435761u) % n);
    const auto j = static_cast<delayspace::HostId>(
        static_cast<std::uint32_t>(k * 40503u + 7u) % n);
    if (i == j || !space.measured.has(i, j)) continue;
    lat_acc.add(lat.predicted(vivaldi, i, j), space.measured.at(i, j));
  }

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig16_lat");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", n)
        .field("candidates", sp.num_candidates)
        .field("runs", runs);
    const std::vector<std::string> names{"Vivaldi-with-LAT",
                                         "Vivaldi-original"};
    const std::vector<Cdf> cdfs{cdf_lat, cdf_vivaldi};
    emit_cdf_grid_json(json, "cdf", names, cdfs, log_grid(1.0, 10000.0), 0);
    emit_cdf_quantiles_json(json, "quantiles", names, cdfs);
    json.object()
        .field("section", std::string("aggregate_error"))
        .field("vivaldi_median_abs_ms", plain_err.median, 2)
        .field("lat_median_abs_ms", lat_acc.absolute_error().median, 2);
    return 0;
  }

  print_cdfs_on_grid("Figure 16: neighbor selection, Vivaldi+LAT vs Vivaldi",
                     {"Vivaldi-with-LAT", "Vivaldi-original"},
                     {cdf_lat, cdf_vivaldi}, log_grid(1.0, 10000.0), cfg, 0);
  print_cdfs_by_quantile("Figure 16 (quantile view)",
                         {"Vivaldi-with-LAT", "Vivaldi-original"},
                         {cdf_lat, cdf_vivaldi}, cfg);
  std::cout << "\naggregate median abs error: Vivaldi="
            << format_double(plain_err.median, 1)
            << " ms, Vivaldi+LAT="
            << format_double(lat_acc.absolute_error().median, 1) << " ms\n";
  return 0;
}
