// Figure 19: TIV severity vs Vivaldi prediction ratio
// (euclidean/measured), 0.1-wide bins over [0, 5], DS^2 steady state.
// Paper shape: severely shrunk edges (ratio << 1) carry high severity;
// severity falls as the ratio rises and is ~0 beyond ratio 2. Huge spread
// within each bin — a heuristic alarm, not a severity predictor.
//
// --json emits flat records (sections: config, bins) for machine-checkable
// regressions.
#include <iostream>

#include "bench_common.hpp"
#include "core/alert.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 700);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 30000));
  const auto warmup = static_cast<std::uint32_t>(flags.get_int("warmup", 300));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  if (!cfg.json) {
    std::cout << "embedding " << space.measured.size() << " hosts for "
              << warmup << " s...\n";
  }
  vivaldi.run(warmup);

  const auto ratio_samples =
      core::collect_ratio_severity_samples(vivaldi, samples, 321 ^ cfg.seed);
  BinnedSeries series(0.0, 5.0, 0.1);
  for (const auto& s : ratio_samples) {
    if (!std::isnan(s.ratio)) series.add(s.ratio, s.severity);
  }

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig19_prediction_ratio");
    json.meta(cfg);
    json.object()
        .field("section", std::string("config"))
        .field("hosts", space.measured.size())
        .field("edge_samples", samples)
        .field("warmup_s", warmup);
    emit_bins_json(json, "bins", series.bins(), 2);
    return 0;
  }

  print_bins("Figure 19: TIV severity vs prediction ratio (0.1 bins)",
             series.bins(), cfg, 2);
  return 0;
}
