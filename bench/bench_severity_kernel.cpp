// Severity-engine kernel benchmark: scalar reference vs. the blocked,
// branch-free kernel, across matrix sizes and thread counts.
//
// Emits a BenchReport JSON array (meta envelope first) so future PRs can
// track the trajectory:
//   [{"section":"meta","schema_version":1,"bench":"bench_severity_kernel",...},
//    {"section":"kernel","n":1024,"threads":1,"missing_fraction":0.1,
//     "scalar_ms":..., "blocked_ms":..., "speedup":..., "max_rel_err":...,
//     "witness_ops":..., "bytes_touched":..., "gops_per_s":..., "gb_per_s":...},
//    ...]
//
// The roofline fields are algorithmic, not cache-measured: the severity
// kernel examines every witness k for every pair (i,j), so
//   witness_ops   = C(n,2) * n        (pair-witness relaxations)
//   bytes_touched = witness_ops * 8   (two float loads per relaxation)
// and gb_per_s / gops_per_s divide those by the measured blocked_ms. They
// make the ROADMAP's bandwidth-vs-compute positioning machine-checkable
// without hardware counters.
//
// Flags:
//   --quick        n in {256, 512} only, 1 repetition (CI smoke run)
//   --threads=T    benchmark only thread count T (default: 1, 2, 4, hw)
//   --missing=F    missing-entry fraction of the synthetic matrix (default
//                  0.1; the mask trick means it barely matters)
//   --seed=S       RNG seed for the synthetic matrix
//
// The matrix is synthetic uniform-random RTTs rather than a generated delay
// space: kernel cost depends only on n and the missing pattern, and this
// keeps the 2048-host case cheap to set up.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "delayspace/delay_matrix.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tiv::core::SeverityMatrix;
using tiv::core::TivAnalyzer;
using tiv::delayspace::DelayMatrix;
using tiv::delayspace::HostId;

using tiv::bench::random_matrix;
using tiv::bench::repeat_ms;
using tiv::bench::Timing;

double max_rel_err(const SeverityMatrix& got, const SeverityMatrix& want) {
  double worst = 0.0;
  const HostId n = got.size();
  for (HostId i = 0; i < n; ++i) {
    for (HostId j = i + 1; j < n; ++j) {
      const double g = got.at(i, j);
      const double w = want.at(i, j);
      const double scale = std::max({1.0, std::abs(g), std::abs(w)});
      worst = std::max(worst, std::abs(g - w) / scale);
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double missing = flags.get_double("missing", 0.1);
  const auto only_threads = flags.get_int("threads", 0);
  tiv::reject_unknown_flags(flags);

  std::vector<HostId> sizes =
      quick ? std::vector<HostId>{256, 512}
            : std::vector<HostId>{256, 512, 1024, 2048};
  std::vector<std::size_t> thread_counts;
  if (only_threads > 0) {
    thread_counts.push_back(static_cast<std::size_t>(only_threads));
  } else {
    thread_counts = {1, 2, 4};
    const std::size_t hw = std::thread::hardware_concurrency();
    if (hw > 4) thread_counts.push_back(hw);
  }

  tiv::bench::BenchConfig cfg;
  cfg.seed = seed;
  tiv::bench::BenchReport json(std::cout, "bench_severity_kernel");
  json.meta(cfg)
      .field("missing_fraction", missing, 3)
      .field_bool("quick", quick)
      .field("max_n", sizes.back());
  for (const HostId n : sizes) {
    const DelayMatrix m = random_matrix(n, missing, seed);
    const TivAnalyzer analyzer(m);
    const int reps = quick ? 1 : (n >= 2048 ? 2 : 3);

    // Scalar baseline is always single-threaded: it is the seed kernel's
    // per-core cost, the denominator of every speedup below.
    tiv::set_parallel_thread_count(1);
    SeverityMatrix ref;
    const Timing scalar =
        repeat_ms(reps, [&] { ref = analyzer.all_severities_reference(); });

    // Algorithmic roofline: every pair (i,j) relaxes through every
    // witness k, two float loads per relaxation.
    const double witness_ops = static_cast<double>(n) *
                               static_cast<double>(n - 1) / 2.0 *
                               static_cast<double>(n);
    const double bytes_touched = witness_ops * 8.0;

    for (const std::size_t threads : thread_counts) {
      tiv::set_parallel_thread_count(threads);
      SeverityMatrix blocked;
      const Timing t =
          repeat_ms(reps, [&] { blocked = analyzer.all_severities(); });
      const double err = max_rel_err(blocked, ref);
      const double secs = t.best_ms / 1e3;
      json.object()
          .field("section", std::string("kernel"))
          .field("n", n)
          .field("threads", threads)
          .field("missing_fraction", missing, 3)
          .field("reps", reps)
          .field("scalar_ms", scalar.best_ms, 3)
          .field("scalar_ms_spread", scalar.spread, 3)
          .field("blocked_ms", t.best_ms, 3)
          .field("blocked_ms_mean", t.mean_ms, 3)
          .field("blocked_ms_spread", t.spread, 3)
          .field("speedup", scalar.best_ms / t.best_ms, 3)
          .field_sig("max_rel_err", err, 3)
          .field("witness_ops", static_cast<std::uint64_t>(witness_ops))
          .field("bytes_touched", static_cast<std::uint64_t>(bytes_touched))
          .field_sig("gops_per_s", secs > 0 ? witness_ops / secs / 1e9 : 0.0,
                     4)
          .field_sig("gb_per_s", secs > 0 ? bytes_touched / secs / 1e9 : 0.0,
                     4);
    }
  }
  tiv::set_parallel_thread_count(0);
  return 0;
}
