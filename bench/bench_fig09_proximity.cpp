// Figure 9: CDFs of |TIV severity difference| between each sampled edge and
// (a) its nearest-pair edge, (b) a random-pair edge — per dataset. Paper
// shape: the nearest-pair curve is only slightly left of the random-pair
// curve, i.e. proximity does NOT predict severity.
//
// --json emits flat records (sections: samples, cdf) for machine-checkable
// regressions, including the achieved-vs-requested sample accounting.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/proximity.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 10000));
  reject_unknown_flags(flags);

  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_fig09_proximity");
    json->meta(cfg);
  }

  const std::vector<double> grid{0.0, 0.02, 0.05, 0.1, 0.2,
                                 0.3, 0.5,  0.75, 1.0, 1.5};
  for (const auto id : delayspace::all_datasets()) {
    BenchConfig c = cfg;
    if (id == delayspace::DatasetId::kPlanetLab) c.hosts = 0;
    const auto space = make_space(id, c);
    core::ProximityParams p;
    p.sample_edges = samples;
    // Same-AS hosts (the synthetic analogue of the same-LAN nodes the
    // measured datasets avoid) do not qualify as nearest neighbors.
    p.min_neighbor_delay_ms = 6.0;
    p.seed = 55 ^ cfg.seed;
    const auto result = core::proximity_experiment(space.measured, p);
    const std::string name = delayspace::dataset_name(id);
    if (cfg.json) {
      json->object()
          .field("section", std::string("samples"))
          .field("dataset", name)
          .field("edges_requested", result.edges_requested)
          .field("edges_achieved", result.edges_achieved)
          .field_bool("sampler_exhausted", result.sampler_exhausted);
      const Cdf near(result.nearest_pair_diffs);
      const Cdf rand(result.random_pair_diffs);
      for (const double x : grid) {
        json->object()
            .field("section", std::string("cdf"))
            .field("dataset", name)
            .field("x", x, 3)
            .field("nearest_pair", near.fraction_at_most(x), 4)
            .field("random_pair", rand.fraction_at_most(x), 4);
      }
    } else {
      print_cdfs_on_grid(
          "Figure 9 (" + name +
              "): severity difference CDF, nearest vs random pair "
              "(achieved " +
              std::to_string(result.edges_achieved) + "/" +
              std::to_string(result.edges_requested) + " samples)",
          {"nearest-pair-edges", "random-pair-edges"},
          {Cdf(result.nearest_pair_diffs), Cdf(result.random_pair_diffs)},
          grid, cfg);
    }
  }
  return 0;
}
