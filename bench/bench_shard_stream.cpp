// Out-of-core live pipeline benchmark: ShardStreamEngine epoch repair
// (dirty input-tile repack + dirty-edge severity recompute committed to
// the on-disk sink) vs the full out-of-core rebuild (fresh input spill +
// all_severities_to_sink), under small input/output cache budgets.
//
// One JSON record per churn point (bench_common JsonArrayWriter), each
// carrying the acceptance properties CI asserts:
//   bit_mismatches       engine severities read back through the sink
//                        cache vs the in-memory all_severities of the
//                        final mutated matrix — must be 0
//   peak_within_budget   both tile caches' peak bytes stayed within their
//                        configured budgets
// plus the repair-vs-rebuild timings whose speedup docs/PERFORMANCE.md
// quotes. Exit status is nonzero when a property fails, so a smoke run
// turns CI red on its own.
//
// Apply-path timings come from the span tracer (docs/OBSERVABILITY.md) —
// the per-record repair_epoch_ms is the mean "epoch" span, with the
// tile-repack / band-pair-stream / sink-commit split reported alongside —
// so the bench's numbers are the same spans a trace capture shows. The
// record stream ends with the registry's metrics snapshot
// ({"section":"metrics",...} records: I/O volume, cache traffic, pool
// utilization for the whole run).
//
// Flags:
//   --quick                reduced scale (CI smoke run)
//   --hosts=N              matrix size (default 512; 128 quick)
//   --tile=T               tile edge, multiple of 16 (default 64; 16 quick)
//   --input-budget-kb=B    input tile-cache budget (default 512)
//   --output-budget-kb=B   severity tile-cache budget (default 256)
//   --missing=F            missing-entry fraction (default 0.1)
//   --epochs=E             epochs per churn point (default 4; 2 quick)
//   --dir=PATH             scratch directory for the tile-store files
//                          (default: system temp dir); files are removed
//   --seed=S               RNG seed
//   --profile-out=PATH     run the span-attributed sampling profiler
//                          (src/obs/prof.hpp) for the whole bench and
//                          write its JSON profile to PATH
//   --profile-hz=HZ        sampling rate when profiling (default 97)
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "core/shard_severity.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "obs/trace.hpp"
#include "shard/tile_cache.hpp"
#include "shard/tile_store.hpp"
#include "sink/severity_tile_store.hpp"
#include "stream/delay_stream.hpp"
#include "stream/shard_stream.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using tiv::Rng;
using tiv::core::SeverityMatrix;
using tiv::core::TivAnalyzer;
using tiv::delayspace::DelayMatrix;
using tiv::delayspace::HostId;
using tiv::stream::DelaySample;
using tiv::stream::DelayStream;
using tiv::stream::ShardStreamConfig;
using tiv::stream::ShardStreamEngine;

using tiv::bench::random_matrix;
using tiv::bench::time_ms;

/// One epoch of churn: `hosts` distinct hosts paired off into disjoint
/// edges, each re-measured once (the bench_stream_engine workload).
void replay_churn_epoch(DelayStream& stream, Rng& rng, std::size_t hosts,
                        double t) {
  const auto n = stream.matrix().size();
  const auto k = static_cast<std::uint32_t>(std::min<std::size_t>(
      hosts & ~std::size_t{1}, n & ~static_cast<std::size_t>(1)));
  const auto picks = rng.sample_without_replacement(n, k);
  std::vector<DelaySample> batch;
  batch.reserve(k / 2);
  for (std::uint32_t e = 0; e + 1 < k; e += 2) {
    batch.push_back({picks[e], picks[e + 1],
                     static_cast<float>(rng.uniform(1.0, 400.0)), t});
  }
  stream.ingest(batch);
}

/// Engine severities (sink readback) vs the in-memory kernel, cells whose
/// float bits differ (0 = bit-identical).
std::size_t bit_mismatches(ShardStreamEngine& engine,
                           const SeverityMatrix& want) {
  std::size_t bad = 0;
  const HostId n = engine.size();
  std::vector<float> row(n);
  for (HostId a = 0; a < n; ++a) {
    engine.severity_row(a, row);
    for (HostId b = 0; b < n; ++b) {
      bad += std::bit_cast<std::uint32_t>(row[b]) !=
             std::bit_cast<std::uint32_t>(want.at(a, b));
    }
  }
  return bad;
}

std::string scratch_file(const std::string& dir, const std::string& tag) {
  return (std::filesystem::path(dir) /
          ("bench_shard_stream_" + std::to_string(::getpid()) + "_" + tag +
           ".tiles"))
      .string();
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  flags.get_bool("json", false);  // accepted for uniformity; always JSON
  const auto n =
      static_cast<HostId>(flags.get_int("hosts", quick ? 128 : 512));
  const auto tile_dim =
      static_cast<std::uint32_t>(flags.get_int("tile", quick ? 16 : 64));
  const double missing = flags.get_double("missing", 0.1);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 29));
  const int epochs = static_cast<int>(flags.get_int("epochs", quick ? 2 : 4));
  const std::string dir = flags.get_string(
      "dir", std::filesystem::temp_directory_path().string());
  const std::size_t input_budget_flag =
      static_cast<std::size_t>(flags.get_int("input-budget-kb", 512)) * 1024;
  const std::size_t output_budget_flag =
      static_cast<std::size_t>(flags.get_int("output-budget-kb", 256)) * 1024;
  const std::string profile_out = flags.get_string("profile-out", "");
  const double profile_hz = flags.get_double("profile-hz", 97.0);
  tiv::reject_unknown_flags(flags);

  // Floor the budgets at the pinned working sets so a many-core pool
  // cannot overshoot through pins alone (same rationale as
  // bench_shard_severity): the band-pair drivers pin <= 3 input tiles per
  // worker plus one prefetch; sink reads pin one tile per reader.
  const std::size_t in_tile_bytes =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float) +
      static_cast<std::size_t>(tile_dim) * ((tile_dim + 63) / 64) *
          sizeof(std::uint64_t);
  const std::size_t out_tile_bytes =
      static_cast<std::size_t>(tile_dim) * tile_dim * sizeof(float);
  const std::size_t input_budget =
      std::max(input_budget_flag,
               (3 * tiv::parallel_thread_count() + 2) * in_tile_bytes);
  const std::size_t output_budget =
      std::max(output_budget_flag,
               (tiv::parallel_thread_count() + 1) * out_tile_bytes);

  const std::vector<double> dirty_fractions =
      quick ? std::vector<double>{0.02, 0.2}
            : std::vector<double>{0.004, 0.01, 0.05, 0.2};

  // Span totals, not spot timers, time the apply path (the rebuild
  // baselines below keep time_ms — they are not instrumented phases).
  tiv::obs::SpanTracer tracer(1 << 14);
  tiv::obs::SpanTracer::attach(&tracer);

  tiv::obs::SpanProfiler profiler({profile_hz});
  if (!profile_out.empty()) profiler.start();

  bool ok = true;
  {
    tiv::bench::BenchConfig bench_cfg;
    bench_cfg.hosts = n;
    bench_cfg.seed = seed;
    tiv::bench::BenchReport json(std::cout, "bench_shard_stream");
    json.meta(bench_cfg)
        .field("tile_dim", tile_dim)
        .field("epochs", epochs)
        .field("missing_fraction", missing, 3)
        .field("input_budget_bytes", input_budget)
        .field("output_budget_bytes", output_budget)
        .field_bool("quick", quick)
        .field_bool("profiled", !profile_out.empty());
    for (const double frac : dirty_fractions) {
      DelayStream stream(random_matrix(n, missing, seed));
      Rng rng(seed ^ 0x0c1ull);

      ShardStreamConfig cfg;
      cfg.tile_dim = tile_dim;
      cfg.input_budget_bytes = input_budget;
      cfg.output_budget_bytes = output_budget;
      cfg.input_path = scratch_file(dir, "in");
      cfg.sink_path = scratch_file(dir, "sev");
      std::optional<ShardStreamEngine> engine;
      const double init_ms =
          time_ms([&] { engine.emplace(stream.matrix(), cfg); });

      const auto dirty_target = std::max<std::size_t>(
          2, static_cast<std::size_t>(static_cast<double>(n) * frac));
      std::size_t tiles_repacked = 0;
      std::size_t sev_tiles_committed = 0;
      std::size_t edges_recomputed = 0;
      const std::uint64_t epoch_ns0 = tracer.total_ns("epoch");
      const std::uint64_t repack_ns0 = tracer.total_ns("tile-repack");
      const std::uint64_t band_ns0 = tracer.total_ns("band-pair-stream");
      const std::uint64_t commit_ns0 = tracer.total_ns("sink-commit");
      for (int e = 0; e < epochs; ++e) {
        replay_churn_epoch(stream, rng, dirty_target, double(e));
        const auto stats = engine->apply_epoch(stream);
        tiles_repacked += stats.input_tiles_repacked;
        sev_tiles_committed += stats.severity_tiles_committed;
        edges_recomputed += stats.edges_recomputed;
      }
      const double apply_ms =
          static_cast<double>(tracer.total_ns("epoch") - epoch_ns0) / 1e6;
      const double repack_ms =
          static_cast<double>(tracer.total_ns("tile-repack") - repack_ns0) /
          1e6;
      const double band_ms =
          static_cast<double>(tracer.total_ns("band-pair-stream") - band_ns0) /
          1e6;
      const double commit_ms =
          static_cast<double>(tracer.total_ns("sink-commit") - commit_ns0) /
          1e6;

      // Full out-of-core rebuild of the final matrix — what every epoch
      // would cost without the dirty-tile repair path: fresh input spill +
      // sink build, all on disk.
      const std::string rb_in = scratch_file(dir, "rebuild_in");
      const std::string rb_out = scratch_file(dir, "rebuild_sev");
      const double rebuild_ms = time_ms([&] {
        tiv::shard::TileStore::write_matrix(rb_in, stream.matrix(), tile_dim);
        const auto store = tiv::shard::TileStore::open(rb_in);
        tiv::shard::TileCache cache(store, input_budget);
        tiv::sink::SeverityTileStore::create(rb_out, n, tile_dim);
        auto sink =
            tiv::sink::SeverityTileStore::open(rb_out, /*writable=*/true);
        tiv::core::all_severities_to_sink(store, cache, sink);
      });
      std::filesystem::remove(rb_in);
      std::filesystem::remove(rb_out);

      const SeverityMatrix in_memory =
          TivAnalyzer(stream.matrix()).all_severities();
      const std::size_t mismatches = bit_mismatches(*engine, in_memory);

      const auto in_stats = engine->input_cache_stats();
      const auto out_stats = engine->output_cache_stats();
      const bool within_budget = in_stats.peak_bytes <= input_budget &&
                                 out_stats.peak_bytes <= output_budget;
      ok = ok && mismatches == 0 && within_budget;

      const double repair_epoch_ms = apply_ms / epochs;
      json.object()
          .field("section", std::string("shard_churn"))
          .field("n", n)
          .field("tile_dim", tile_dim)
          .field("missing_fraction", missing, 3)
          .field("dirty_fraction", frac, 4)
          .field("epochs", epochs)
          .field("input_budget_bytes", input_budget)
          .field("output_budget_bytes", output_budget)
          .field("init_full_build_ms", init_ms, 3)
          .field("input_tiles_repacked", tiles_repacked)
          .field("severity_tiles_committed", sev_tiles_committed)
          .field("edges_recomputed", edges_recomputed)
          .field("repair_epoch_ms", repair_epoch_ms, 3)
          .field("tile_repack_ms", repack_ms / epochs, 3)
          .field("band_pair_stream_ms", band_ms / epochs, 3)
          .field("sink_commit_ms", commit_ms / epochs, 3)
          .field("oocore_rebuild_ms", rebuild_ms, 3)
          .field("speedup_vs_oocore_rebuild",
                 repair_epoch_ms > 0.0 ? rebuild_ms / repair_epoch_ms : 0.0,
                 2)
          .field("input_tile_hits", in_stats.hits)
          .field("input_tile_misses", in_stats.misses)
          .field("input_evictions", in_stats.evictions)
          .field("input_invalidations", in_stats.invalidations)
          .field("input_peak_bytes", in_stats.peak_bytes)
          .field("output_tile_hits", out_stats.hits)
          .field("output_tile_misses", out_stats.misses)
          .field("output_evictions", out_stats.evictions)
          .field("output_peak_bytes", out_stats.peak_bytes)
          .field_bool("peak_within_budget", within_budget)
          .field("bit_mismatches", mismatches);
    }
    tiv::bench::emit_metrics_json(json,
                                  tiv::obs::MetricsRegistry::instance()
                                      .snapshot());
  }
  if (!profile_out.empty()) {
    profiler.stop();
    std::ofstream pf(profile_out);
    profiler.profile().write_json(pf);
  }
  tiv::obs::SpanTracer::attach(nullptr);
  return ok ? 0 : 1;
}
