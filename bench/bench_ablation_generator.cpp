// Ablation (DESIGN.md §6): policy-routing detours vs i.i.d. multiplicative
// inflation as the TIV-generating mechanism. Holding the topology and host
// attachment comparable, the i.i.d. variant produces (a) a severity-vs-
// length relation that is far smoother and (b) no cluster structure in the
// violations — the irregularity the paper documents is a *structural*
// property of routing, which is why the substrate matters.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/severity.hpp"
#include "delayspace/clustering.hpp"
#include "delayspace/generate.hpp"
#include "routing/policy_routing.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"

namespace {

/// Coefficient of variation of bin medians — a simple irregularity score
/// for the severity-vs-length curve (higher = more irregular).
double median_irregularity(const std::vector<tiv::Bin>& bins) {
  std::vector<double> medians;
  for (const auto& b : bins) {
    if (b.count >= 20) medians.push_back(b.median);
  }
  if (medians.size() < 3) return 0.0;
  // Mean absolute difference between successive bins, normalized by the
  // overall mean: captures humps, not just spread.
  double mean = 0.0;
  for (double v : medians) mean += v;
  mean /= static_cast<double>(medians.size());
  if (mean <= 0) return 0.0;
  double jump = 0.0;
  for (std::size_t i = 1; i < medians.size(); ++i) {
    jump += std::abs(medians[i] - medians[i - 1]);
  }
  return jump / (static_cast<double>(medians.size() - 1) * mean);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto samples =
      static_cast<std::size_t>(flags.get_int("edge-samples", 15000));
  reject_unknown_flags(flags);

  auto params = delayspace::dataset_params(delayspace::DatasetId::kDs2,
                                           cfg.hosts != 0 ? cfg.hosts : 500);
  params.topology.seed ^= cfg.seed;
  params.hosts.seed ^= cfg.seed;

  // Build the routing substrate explicitly (generate_delay_space would do
  // the same internally) so the route-class mix of the ablated topology is
  // reportable: the class counts are the structural fingerprint the i.i.d.
  // variant erases.
  const auto graph = topology::generate_topology(params.topology);
  const routing::PolicyRoutingMatrix policy(graph);
  const auto policy_space =
      delayspace::generate_hosts_over(graph, policy, params.hosts);
  const auto iid_space = delayspace::generate_iid_inflation(params);

  const routing::RouteClassCounts& classes = policy.class_counts();
  print_section(std::cout, "Route-class mix (policy substrate)");
  Table class_table({"class", "routes", "fraction"});
  const char* class_names[] = {"customer", "peer", "provider"};
  const routing::RouteClass class_ids[] = {routing::RouteClass::kCustomer,
                                           routing::RouteClass::kPeer,
                                           routing::RouteClass::kProvider};
  for (int c = 0; c < 3; ++c) {
    class_table.add_row(
        {class_names[c], std::to_string(classes.of(class_ids[c])),
         format_double(policy.class_fraction(class_ids[c]), 4)});
  }
  class_table.add_row(
      {"unreachable", std::to_string(classes.unreachable), "-"});
  emit(class_table, cfg);

  Table table({"metric", "policy-routing", "iid-inflation"});
  std::vector<std::string> names{"policy-routing", "iid-inflation"};
  const delayspace::DelaySpace* spaces[] = {&policy_space, &iid_space};
  double irregularity[2];
  double triangle_fraction[2];
  double cross_over_within[2];
  for (int v = 0; v < 2; ++v) {
    const auto& space = *spaces[v];
    const core::TivAnalyzer analyzer(space.measured);
    const auto sampled = analyzer.sampled_severities(samples, 11 ^ cfg.seed);
    BinnedSeries series(0.0, 1000.0, 25.0);
    for (const auto& [edge, sev] : sampled) {
      series.add(space.measured.at(edge.first, edge.second), sev);
    }
    print_bins("severity vs delay (" + names[v] + ")", series.bins(), cfg);
    irregularity[v] = median_irregularity(series.bins());
    triangle_fraction[v] = analyzer.violating_triangle_fraction(300000);

    const auto clustering =
        delayspace::cluster_delay_space(space.measured, {});
    double within = 0.0;
    double cross = 0.0;
    std::size_t nw = 0;
    std::size_t nc = 0;
    for (const auto& [edge, sev] : sampled) {
      if (clustering.same_cluster(edge.first, edge.second)) {
        within += sev;
        ++nw;
      } else {
        cross += sev;
        ++nc;
      }
    }
    cross_over_within[v] = (nw == 0 || nc == 0 || within == 0.0)
                               ? 0.0
                               : (cross / nc) / (within / nw);
  }

  print_section(std::cout, "Ablation summary");
  table.add_row({"severity-vs-length irregularity",
                 format_double(irregularity[0], 3),
                 format_double(irregularity[1], 3)});
  table.add_row({"violating triangle fraction",
                 format_double(triangle_fraction[0], 3),
                 format_double(triangle_fraction[1], 3)});
  table.add_row({"cross/within cluster severity ratio",
                 format_double(cross_over_within[0], 2),
                 format_double(cross_over_within[1], 2)});
  emit(table, cfg);
  return 0;
}
