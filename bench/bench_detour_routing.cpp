// Extension bench (DESIGN.md §6): TIV-aware one-hop detour routing — the
// constructive application of the alert mechanism. Sweeps the alert
// threshold and relay budget, reporting delay improvement vs probe cost
// against the random-relay and one-hop-oracle baselines, plus the measured
// speedup of the masked-view oracle scan over the seed's branchy scalar
// scan at the configured host count.
//
// One packed DelayMatrixView is built up front and shared by every
// evaluate call and oracle scan — the matrix is packed exactly once.
//
// --json emits a flat record stream (sections: threshold_sweep, baseline,
// oracle_scan) for machine-checkable regressions.
#include <iostream>
#include <optional>

#include "bench_common.hpp"
#include "core/detour.hpp"
#include "core/edge_sampling.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto sample_edges =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(300);

  const delayspace::DelayMatrixView view(space.measured);
  std::optional<BenchReport> json;
  if (cfg.json) {
    json.emplace(std::cout, "bench_detour_routing");
    json->meta(cfg);
  }

  const auto pct_alerted = [](const core::DetourEvaluation& e) {
    return 100.0 * static_cast<double>(e.alerted_edges) /
           static_cast<double>(e.edges);
  };
  const auto probes_per_edge = [](const core::DetourEvaluation& e) {
    return static_cast<double>(e.probes_tiv_aware) /
           static_cast<double>(e.edges);
  };

  if (!cfg.json) {
    print_section(std::cout,
                  "TIV-aware detour routing: threshold sweep (8 relays)");
  }
  Table table({"threshold", "mean delay (ms)", "stretch vs oracle",
               "alerted %", "probes/edge"});
  for (const double t : {0.0, 0.3, 0.5, 0.6, 0.7, 0.9}) {
    core::DetourParams dp;
    dp.alert_threshold = t;
    const auto eval = core::evaluate_detour_routing(vivaldi, dp, sample_edges,
                                                    31 ^ cfg.seed, &view);
    if (cfg.json) {
      json->object()
          .field("section", std::string("threshold_sweep"))
          .field("threshold", t, 1)
          .field("edges", eval.edges)
          .field("edges_requested", eval.edges_requested)
          .field("mean_delay_ms", eval.achieved_ms.mean, 3)
          .field("stretch_vs_oracle", eval.mean_stretch_achieved, 4)
          .field("alerted_pct", pct_alerted(eval), 2)
          .field("probes_per_edge", probes_per_edge(eval), 3);
    } else {
      table.add_row(
          {format_double(t, 1), format_double(eval.achieved_ms.mean, 2),
           format_double(eval.mean_stretch_achieved, 3),
           format_double(pct_alerted(eval), 1),
           format_double(probes_per_edge(eval), 2)});
    }
  }
  if (!cfg.json) emit(table, cfg);

  if (!cfg.json) print_section(std::cout, "Baselines (threshold 0.6, 8 relays)");
  core::DetourParams dp;
  const auto eval = core::evaluate_detour_routing(vivaldi, dp, sample_edges,
                                                  31 ^ cfg.seed, &view);
  if (cfg.json) {
    json->object()
        .field("section", std::string("baseline"))
        .field("scheme", std::string("direct"))
        .field("mean_delay_ms", eval.direct_ms.mean, 3)
        .field("stretch_vs_oracle", eval.mean_stretch_direct, 4)
        .field("total_probes", std::uint64_t{0});
    json->object()
        .field("section", std::string("baseline"))
        .field("scheme", std::string("tiv_aware_detour"))
        .field("mean_delay_ms", eval.achieved_ms.mean, 3)
        .field("stretch_vs_oracle", eval.mean_stretch_achieved, 4)
        .field("total_probes", eval.probes_tiv_aware);
    json->object()
        .field("section", std::string("baseline"))
        .field("scheme", std::string("random_relay_detour"))
        .field("mean_delay_ms", eval.random_relay_ms.mean, 3)
        .field("total_probes", eval.probes_random);
    json->object()
        .field("section", std::string("baseline"))
        .field("scheme", std::string("one_hop_oracle"))
        .field("mean_delay_ms", eval.oracle_ms.mean, 3)
        .field("stretch_vs_oracle", 1.0, 4)
        .field("total_probes", std::uint64_t{0});
  } else {
    Table bt({"scheme", "mean delay (ms)", "stretch vs oracle",
              "total probes"});
    bt.add_row({"direct", format_double(eval.direct_ms.mean, 2),
                format_double(eval.mean_stretch_direct, 3), "0"});
    bt.add_row({"tiv-aware detour", format_double(eval.achieved_ms.mean, 2),
                format_double(eval.mean_stretch_achieved, 3),
                std::to_string(eval.probes_tiv_aware)});
    bt.add_row({"random-relay detour",
                format_double(eval.random_relay_ms.mean, 2), "-",
                std::to_string(eval.probes_random)});
    bt.add_row({"one-hop oracle", format_double(eval.oracle_ms.mean, 2),
                "1.000", "-"});
    emit(bt, cfg);
  }

  // Oracle-scan kernel: the seed's branchy per-element scan vs the masked
  // lane scan, over the same sampled edges. The two are exactly equivalent
  // (gtest-enforced in test_detour); here we report the measured speedup.
  {
    core::PairSampleOptions opt;
    opt.require_positive = true;
    const auto sample = core::sample_measured_pairs(
        space.measured, std::min<std::size_t>(sample_edges, 4000),
        97 ^ cfg.seed, opt);
    const core::DetourRouter router(vivaldi, dp, &view);
    double sum_scalar = 0.0;
    const double scalar_ms = best_ms(3, [&] {
      sum_scalar = 0.0;
      for (const auto& [a, b] : sample.pairs) {
        sum_scalar += router.oracle_one_hop_scalar(a, b);
      }
    });
    double sum_masked = 0.0;
    const double masked_ms = best_ms(3, [&] {
      sum_masked = 0.0;
      for (const auto& [a, b] : sample.pairs) {
        sum_masked += router.oracle_one_hop(a, b);
      }
    });
    const double speedup = scalar_ms > 0.0 ? scalar_ms / masked_ms : 0.0;
    if (cfg.json) {
      json->object()
          .field("section", std::string("oracle_scan"))
          .field("n", space.measured.size())
          .field("edges", sample.pairs.size())
          .field("scalar_ms", scalar_ms, 3)
          .field("masked_ms", masked_ms, 3)
          .field("speedup", speedup, 3)
          .field_sig("sum_abs_diff", std::abs(sum_scalar - sum_masked), 3);
    } else {
      print_section(std::cout, "Oracle one-hop scan: scalar vs masked view");
      Table ot({"n", "edges", "scalar ms", "masked ms", "speedup"});
      ot.add_row({std::to_string(space.measured.size()),
                  std::to_string(sample.pairs.size()),
                  format_double(scalar_ms, 2), format_double(masked_ms, 2),
                  format_double(speedup, 2)});
      emit(ot, cfg);
    }
  }
  return 0;
}
