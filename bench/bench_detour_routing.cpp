// Extension bench (DESIGN.md §6): TIV-aware one-hop detour routing — the
// constructive application of the alert mechanism. Sweeps the alert
// threshold and relay budget, reporting delay improvement vs probe cost
// against the random-relay and one-hop-oracle baselines.
#include <iostream>

#include "bench_common.hpp"
#include "core/detour.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 600);
  const auto sample_edges =
      static_cast<std::size_t>(flags.get_int("edge-samples", 20000));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  embedding::VivaldiParams vp;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem vivaldi(space.measured, vp);
  vivaldi.run(300);

  print_section(std::cout,
                "TIV-aware detour routing: threshold sweep (8 relays)");
  Table table({"threshold", "mean delay (ms)", "stretch vs oracle",
               "alerted %", "probes/edge"});
  core::DetourEvaluation base;
  for (const double t : {0.0, 0.3, 0.5, 0.6, 0.7, 0.9}) {
    core::DetourParams dp;
    dp.alert_threshold = t;
    const auto eval =
        core::evaluate_detour_routing(vivaldi, dp, sample_edges, 31 ^ cfg.seed);
    if (t == 0.0) base = eval;
    table.add_row(
        {format_double(t, 1), format_double(eval.achieved_ms.mean, 2),
         format_double(eval.mean_stretch_achieved, 3),
         format_double(100.0 * static_cast<double>(eval.alerted_edges) /
                           static_cast<double>(eval.edges),
                       1),
         format_double(static_cast<double>(eval.probes_tiv_aware) /
                           static_cast<double>(eval.edges),
                       2)});
  }
  emit(table, cfg);

  print_section(std::cout, "Baselines (threshold 0.6, 8 relays)");
  core::DetourParams dp;
  const auto eval =
      core::evaluate_detour_routing(vivaldi, dp, sample_edges, 31 ^ cfg.seed);
  Table bt({"scheme", "mean delay (ms)", "stretch vs oracle", "total probes"});
  bt.add_row({"direct", format_double(eval.direct_ms.mean, 2),
              format_double(eval.mean_stretch_direct, 3), "0"});
  bt.add_row({"tiv-aware detour", format_double(eval.achieved_ms.mean, 2),
              format_double(eval.mean_stretch_achieved, 3),
              std::to_string(eval.probes_tiv_aware)});
  bt.add_row({"random-relay detour",
              format_double(eval.random_relay_ms.mean, 2), "-",
              std::to_string(eval.probes_random)});
  bt.add_row({"one-hop oracle", format_double(eval.oracle_ms.mean, 2),
              "1.000", "-"});
  emit(bt, cfg);
  return 0;
}
