// Ablation (DESIGN.md §6): Vivaldi dimensionality sweep (2-9 D). The paper
// asserts TIV is incompatible with ANY metric space (§3.1); if the
// embedding error and the neighbor-selection penalty were artifacts of too
// few dimensions, they would vanish as dimensions grow. They do not.
#include <iostream>

#include "bench_common.hpp"
#include "core/alert.hpp"
#include "embedding/vivaldi.hpp"
#include "neighbor/selection.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 500);
  const auto runs = static_cast<std::uint32_t>(flags.get_int("runs", 3));
  reject_unknown_flags(flags);

  const auto space = make_space(delayspace::DatasetId::kDs2, cfg);
  const auto n = space.measured.size();
  neighbor::SelectionParams sp;
  sp.num_candidates = std::max<std::uint32_t>(20, n / 20);
  sp.runs = runs;
  sp.seed = 77 ^ cfg.seed;
  const neighbor::SelectionExperiment exp(space.measured, sp);

  print_section(std::cout, "Vivaldi dimensionality ablation (DS2 data)");
  Table table({"dim", "median abs err (ms)", "p90 abs err (ms)",
               "median penalty %", "p90 penalty %",
               "alert accuracy (worst 5%, t=0.5)"});
  for (std::uint32_t dim : {2u, 3u, 5u, 7u, 9u}) {
    embedding::VivaldiParams vp;
    vp.dimension = dim;
    vp.seed = 3 ^ cfg.seed;
    embedding::VivaldiSystem sys(space.measured, vp);
    sys.run(300);
    const auto err = sys.snapshot_error(100000).absolute_error();
    const Cdf penalties =
        exp.run([&sys](delayspace::HostId a, delayspace::HostId b) {
          return sys.predicted(a, b);
        });
    const auto ratio_samples =
        core::collect_ratio_severity_samples(sys, 10000, 321 ^ cfg.seed);
    const auto alert = core::evaluate_alert(ratio_samples, 0.05, 0.5);
    table.add_row({std::to_string(dim), format_double(err.median, 1),
                   format_double(err.p90, 1),
                   format_double(penalties.quantile(0.5), 1),
                   format_double(penalties.quantile(0.9), 1),
                   format_double(alert.accuracy, 3)});
  }
  emit(table, cfg);
  std::cout << "(expected: error plateaus — TIV residual is not a "
               "dimensionality artifact; the alert works in every "
               "dimension)\n";

  // Height-vector variant (Dabek §2.6) at the paper's 5-D setting: heights
  // absorb satellite access constants but cannot remove routing-induced
  // TIVs either.
  print_section(std::cout, "Height-vector Vivaldi ablation (5-D)");
  Table ht({"variant", "median abs err (ms)", "p90 abs err (ms)",
            "median penalty %"});
  for (const bool use_height : {false, true}) {
    embedding::VivaldiParams vp;
    vp.dimension = 5;
    vp.seed = 3 ^ cfg.seed;
    vp.use_height = use_height;
    embedding::VivaldiSystem sys(space.measured, vp);
    sys.run(300);
    const auto err = sys.snapshot_error(100000).absolute_error();
    const Cdf penalties =
        exp.run([&sys](delayspace::HostId a, delayspace::HostId b) {
          return sys.predicted(a, b);
        });
    ht.add_row({use_height ? "with heights" : "plain Euclidean",
                format_double(err.median, 1), format_double(err.p90, 1),
                format_double(penalties.quantile(0.5), 1)});
  }
  emit(ht, cfg);
  return 0;
}
