// Figure 10: Vivaldi signed-error traces on the 3-node TIV network
// (AB = 5 ms, BC = 5 ms, CA = 100 ms) over 100 simulated seconds. Paper
// shape: no equilibrium exists; the per-edge errors oscillate endlessly
// with large magnitude.
//
// --json emits flat records (sections: trace, summary) for machine-checkable
// regressions; the summary carries the never-converges statistics.
#include <iostream>

#include "bench_common.hpp"
#include "embedding/trackers.hpp"
#include "embedding/vivaldi.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace tiv;
  using namespace tiv::bench;
  const Flags flags(argc, argv);
  const BenchConfig cfg = parse_config(flags, 0);
  const auto seconds =
      static_cast<std::uint32_t>(flags.get_int("seconds", 100));
  reject_unknown_flags(flags);

  delayspace::DelayMatrix m(3);
  m.set(0, 1, 5.0f);    // A-B
  m.set(1, 2, 5.0f);    // B-C
  m.set(0, 2, 100.0f);  // C-A (violating edge)

  embedding::VivaldiParams vp;
  vp.dimension = 5;
  vp.seed = 3 ^ cfg.seed;
  embedding::VivaldiSystem sys(m, vp);
  embedding::EdgeErrorTrace trace({{0, 1}, {1, 2}, {0, 2}});
  for (std::uint32_t t = 0; t < seconds; ++t) {
    sys.tick();
    trace.observe(sys);
  }

  // Oscillation summary: the system never settles.
  Summary late;
  {
    std::vector<double> tail;
    for (std::size_t t = seconds / 2; t < seconds; ++t) {
      tail.push_back(std::abs(trace.trace(2)[t]));
    }
    late = summarize(tail);
  }

  if (cfg.json) {
    BenchReport json(std::cout, "bench_fig10_threenode_trace");
    json.meta(cfg);
    for (std::uint32_t t = 0; t < seconds; ++t) {
      json.object()
          .field("section", std::string("trace"))
          .field("t", t + 1)
          .field("err_ab", trace.trace(0)[t], 3)
          .field("err_bc", trace.trace(1)[t], 3)
          .field("err_ca", trace.trace(2)[t], 3);
    }
    json.object()
        .field("section", std::string("summary"))
        .field("tail_seconds", seconds / 2)
        .field("abs_err_ca_median", late.median, 3)
        .field("abs_err_ca_min", late.min, 3)
        .field("abs_err_ca_max", late.max, 3);
    return 0;
  }

  print_section(std::cout,
                "Figure 10: Vivaldi error trace, 3-node TIV network");
  Table table({"t(s)", "err A-B", "err B-C", "err C-A"});
  for (std::uint32_t t = 0; t < seconds; t += 5) {
    table.add_row({std::to_string(t + 1), format_double(trace.trace(0)[t], 2),
                   format_double(trace.trace(1)[t], 2),
                   format_double(trace.trace(2)[t], 2)});
  }
  emit(table, cfg);

  std::cout << "\n|err C-A| over the last " << seconds / 2
            << " s: median=" << format_double(late.median, 1)
            << " ms, range=[" << format_double(late.min, 1) << ", "
            << format_double(late.max, 1) << "] ms (never converges)\n";
  return 0;
}
