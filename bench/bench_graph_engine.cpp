// Batched graph-engine benchmark: the seed's one-allocating-Dijkstra-per-
// source routing vs. the CSR batched engine, swept over topology size,
// batch size, and thread count, with an exact parity cross-check against
// the scalar reference on every size.
//
// Emits a JSON array so future PRs can track the trajectory:
//   [{"section":"policy","n":512,"threads":1,"scalar_ms":...,
//     "batch_ms":..., "speedup":..., "warm_scratch_allocs":0},
//    {"section":"parity","n":512,"parity_mismatches":0}, ...]
//
// Exits nonzero when any batched row differs from the scalar reference
// (operator== on every Route/PathInfo field) or when a measured batch
// performs a scratch allocation after warmup — CI runs `--quick` and
// asserts both stay zero.
//
// Flags:
//   --quick        small topologies, 1 repetition (CI smoke run)
//   --threads=T    benchmark only thread count T (default: 1, 2, 4, hw)
//   --seed=S       xor-ed into the topology generator seed
//   --json         accepted for uniformity; output is always JSON
//   --profile-out=PATH  run the sampling profiler (src/obs/prof.hpp) for
//                       the whole bench and write its JSON profile to PATH
//   --profile-hz=HZ     sampling rate when profiling (default 97)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/prof.hpp"
#include "routing/graph_engine.hpp"
#include "routing/policy_routing.hpp"
#include "routing/shortest_path.hpp"
#include "topology/generator.hpp"
#include "util/flags.hpp"
#include "util/parallel.hpp"

namespace {

using tiv::bench::best_ms;
using tiv::routing::PathInfo;
using tiv::routing::Route;
using tiv::topology::AsGraph;
using tiv::topology::AsId;

bool same_route(const Route& a, const Route& b) {
  return a.cls == b.cls && a.hops == b.hops && a.delay_ms == b.delay_ms &&
         a.data_delay_ms == b.data_delay_ms;
}

bool same_path(const PathInfo& a, const PathInfo& b) {
  return a.delay_ms == b.delay_ms && a.hops == b.hops;
}

std::uint64_t scratch_allocs_now() {
  return tiv::obs::MetricsRegistry::instance()
      .counter("routing.scratch_allocs")
      .value();
}

}  // namespace

int main(int argc, char** argv) {
  const tiv::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick", false);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const auto only_threads = flags.get_int("threads", 0);
  (void)flags.get_bool("json", true);  // always JSON, flag kept for symmetry
  const std::string profile_out = flags.get_string("profile-out", "");
  const double profile_hz = flags.get_double("profile-hz", 97.0);
  tiv::reject_unknown_flags(flags);

  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{96, 160}
            : std::vector<std::uint32_t>{256, 512, 1024};
  std::vector<std::size_t> thread_counts;
  if (only_threads > 0) {
    thread_counts.push_back(static_cast<std::size_t>(only_threads));
  } else {
    thread_counts = {1, 2, 4};
    const std::size_t hw = std::thread::hardware_concurrency();
    if (hw > 4) thread_counts.push_back(hw);
  }
  const int reps = quick ? 1 : 2;

  tiv::obs::SpanProfiler profiler({profile_hz});
  if (!profile_out.empty()) profiler.start();

  std::uint64_t parity_mismatches = 0;
  std::uint64_t warm_scratch_allocs = 0;
  {
    tiv::bench::BenchConfig cfg;
    cfg.seed = seed;
    tiv::bench::BenchReport json(std::cout, "bench_graph_engine");
    json.meta(cfg)
        .field("reps", reps)
        .field_bool("quick", quick)
        .field("max_n", sizes.back());
    for (const std::uint32_t n : sizes) {
      tiv::topology::TopologyParams params;
      params.num_ases = n;
      params.seed = seed ^ n;
      const AsGraph graph = tiv::topology::generate_topology(params);
      const std::vector<AsId> all = tiv::routing::all_nodes(graph);

      // Scalar reference: the seed's per-source loop, single-threaded —
      // the denominator of every speedup below, and the parity oracle.
      tiv::set_parallel_thread_count(1);
      std::vector<Route> ref_policy(static_cast<std::size_t>(n) * n);
      std::vector<PathInfo> ref_sssp(static_cast<std::size_t>(n) * n);
      for (AsId v = 0; v < n; ++v) {
        const auto routes = tiv::routing::policy_routes_to(graph, v);
        std::copy(routes.begin(), routes.end(),
                  ref_policy.begin() + static_cast<std::size_t>(v) * n);
        const auto paths = tiv::routing::shortest_paths_from(graph, v);
        std::copy(paths.begin(), paths.end(),
                  ref_sssp.begin() + static_cast<std::size_t>(v) * n);
      }
      // Timed the way the seed built its matrices: one allocating
      // single-source call per row, every row kept.
      std::vector<std::vector<Route>> policy_rows(n);
      std::vector<std::vector<PathInfo>> sssp_rows(n);
      const double scalar_policy_ms = best_ms(reps, [&] {
        for (AsId v = 0; v < n; ++v) {
          policy_rows[v] = tiv::routing::policy_routes_to(graph, v);
        }
      });
      const double scalar_sssp_ms = best_ms(reps, [&] {
        for (AsId v = 0; v < n; ++v) {
          sssp_rows[v] = tiv::routing::shortest_paths_from(graph, v);
        }
      });
      const double checksum =
          policy_rows[0].back().hops + sssp_rows[0].back().hops;

      // Exact parity: every batched cell must equal the scalar cell.
      const auto batched_policy = tiv::routing::policy_routes_batch(graph, all);
      const auto batched_sssp = tiv::routing::shortest_paths_batch(graph, all);
      std::uint64_t policy_bad = 0;
      std::uint64_t sssp_bad = 0;
      for (std::size_t i = 0; i < batched_policy.size(); ++i) {
        policy_bad += !same_route(batched_policy[i], ref_policy[i]);
        sssp_bad += !same_path(batched_sssp[i], ref_sssp[i]);
      }
      parity_mismatches += policy_bad + sssp_bad;
      json.object()
          .field("section", std::string("parity"))
          .field("n", n)
          .field("policy_mismatches", policy_bad)
          .field("sssp_mismatches", sssp_bad)
          .field("checksum", checksum, 0);

      // Thread sweep over all-pairs batches. One warmup batch sizes every
      // per-thread workspace at this n and thread count; the measured runs
      // must then perform zero scratch allocations.
      std::vector<Route> policy_out(batched_policy.size());
      std::vector<PathInfo> sssp_out(batched_sssp.size());
      double policy_ms_1t = 0.0;
      double sssp_ms_1t = 0.0;
      for (const std::size_t threads : thread_counts) {
        tiv::set_parallel_thread_count(threads);
        // Warm up until a full batch runs allocation-free: a pool worker
        // that sat out an earlier batch pays its one-time workspace build
        // when it first claims a chunk, so one pass is not always enough
        // under dynamic scheduling.
        for (int w = 0; w < 5; ++w) {
          const std::uint64_t before = scratch_allocs_now();
          tiv::routing::policy_routes_batch(graph, all, policy_out.data());
          tiv::routing::shortest_paths_batch(graph, all, sssp_out.data());
          if (scratch_allocs_now() == before) break;
        }
        const std::uint64_t allocs_before = scratch_allocs_now();
        const double policy_ms = best_ms(reps, [&] {
          tiv::routing::policy_routes_batch(graph, all, policy_out.data());
        });
        const double sssp_ms = best_ms(reps, [&] {
          tiv::routing::shortest_paths_batch(graph, all, sssp_out.data());
        });
        const std::uint64_t warm_allocs = scratch_allocs_now() - allocs_before;
        // Gate on the single-thread runs only: there the set of
        // participating threads is fixed, so any measured allocation is a
        // genuine engine regression. At higher counts a worker can still
        // join late on a loaded machine; reported, not gated.
        if (threads == 1) {
          warm_scratch_allocs += warm_allocs;
          policy_ms_1t = policy_ms;
          sssp_ms_1t = sssp_ms;
        }
        json.object()
            .field("section", std::string("policy"))
            .field("n", n)
            .field("threads", threads)
            .field("scalar_ms", scalar_policy_ms, 3)
            .field("batch_ms", policy_ms, 3)
            .field("speedup", scalar_policy_ms / policy_ms, 3)
            .field("speedup_vs_1t",
                   policy_ms_1t > 0.0 ? policy_ms_1t / policy_ms : 0.0, 3)
            .field("us_per_source", policy_ms * 1000.0 / n, 3)
            .field("warm_scratch_allocs", warm_allocs);
        json.object()
            .field("section", std::string("sssp"))
            .field("n", n)
            .field("threads", threads)
            .field("scalar_ms", scalar_sssp_ms, 3)
            .field("batch_ms", sssp_ms, 3)
            .field("speedup", scalar_sssp_ms / sssp_ms, 3)
            .field("speedup_vs_1t",
                   sssp_ms_1t > 0.0 ? sssp_ms_1t / sssp_ms : 0.0, 3)
            .field("us_per_source", sssp_ms * 1000.0 / n, 3);
      }

      // Batch-size sweep at one thread: dispatch overhead and workspace
      // reuse across sub-batches (e.g. incremental recomputation after a
      // topology change routes only the dirty destinations).
      tiv::set_parallel_thread_count(1);
      for (const std::size_t batch :
           std::vector<std::size_t>{1, 8, 64, all.size()}) {
        if (batch > all.size()) continue;
        const std::vector<AsId> subset(all.begin(),
                                       all.begin() + static_cast<long>(batch));
        const double batch_ms = best_ms(reps, [&] {
          tiv::routing::policy_routes_batch(graph, subset, policy_out.data());
        });
        json.object()
            .field("section", std::string("batch_sweep"))
            .field("n", n)
            .field("batch", batch)
            .field("batch_ms", batch_ms, 3)
            .field("us_per_source", batch_ms * 1000.0 / batch, 3);
      }
    }

    json.object()
        .field("section", std::string("summary"))
        .field("parity_mismatches", parity_mismatches)
        .field("warm_scratch_allocs", warm_scratch_allocs);
  }
  tiv::set_parallel_thread_count(0);
  if (!profile_out.empty()) {
    profiler.stop();
    std::ofstream pf(profile_out);
    profiler.profile().write_json(pf);
  }
  if (parity_mismatches != 0 || warm_scratch_allocs != 0) {
    std::cerr << "bench_graph_engine: FAILED (" << parity_mismatches
              << " parity mismatches, " << warm_scratch_allocs
              << " warm scratch allocs)\n";
    return 1;
  }
  return 0;
}
